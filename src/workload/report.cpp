#include "workload/report.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace byzcast::workload {

void print_header(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
}

void print_table(const std::vector<std::string>& columns,
                 const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(columns.size());
  for (std::size_t i = 0; i < columns.size(); ++i) {
    widths[i] = columns[i].size();
  }
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  const auto print_row = [&widths](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      std::printf("%-*s  ", static_cast<int>(widths[i]), cells[i].c_str());
    }
    std::printf("\n");
  };
  print_row(columns);
  std::string rule;
  for (const auto w : widths) rule += std::string(w, '-') + "  ";
  std::printf("%s\n", rule.c_str());
  for (const auto& row : rows) print_row(row);
}

std::string fmt(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  return os.str();
}

namespace {

std::ofstream open_csv(const std::string& path) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  return std::ofstream(path);
}

}  // namespace

void write_cdf_csv(const std::string& path, const LatencyRecorder& recorder,
                   std::size_t max_points) {
  auto out = open_csv(path);
  if (!out) return;
  out << "latency_ms,cdf\n";
  for (const auto& [ms, frac] : recorder.cdf(max_points)) {
    out << ms << ',' << frac << '\n';
  }
}

void write_series_csv(const std::string& path,
                      const std::vector<std::string>& columns,
                      const std::vector<std::vector<std::string>>& rows) {
  auto out = open_csv(path);
  if (!out) return;
  for (std::size_t i = 0; i < columns.size(); ++i) {
    out << (i ? "," : "") << columns[i];
  }
  out << '\n';
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      out << (i ? "," : "") << row[i];
    }
    out << '\n';
  }
}

void write_metrics_sidecar(const std::string& path,
                           const ExperimentResult& result) {
  if (!result.metrics) return;
  auto out = open_csv(path);
  if (!out) return;
  out << "{\"summary\":{";
  out << "\"throughput\":" << result.throughput;
  out << ",\"throughput_local\":" << result.throughput_local;
  out << ",\"throughput_global\":" << result.throughput_global;
  out << ",\"completed\":" << result.completed;
  out << ",\"a_deliveries\":" << result.a_deliveries;
  out << ",\"wire_messages\":" << result.wire_messages;
  out << ",\"latency_mean_ms\":" << result.latency_all.mean_ms();
  out << ",\"latency_p95_ms\":" << result.latency_all.percentile_ms(95);
  out << "},\"metrics\":" << result.metrics->to_json();

  out << ",\"trace\":{";
  if (result.trace) {
    out << "\"events_recorded\":" << result.trace->records().size();
    out << ",\"events_dropped\":" << result.trace->dropped();
    const MessageId pick = result.trace->find_multi_hop();
    out << ",\"example_multi_hop\":";
    if (pick.origin.valid()) {
      out << "{\"msg\":\"" << to_string(pick) << "\",\"hops\":[";
      bool first = true;
      for (const auto& rec : result.trace->path(pick)) {
        if (!first) out << ",";
        first = false;
        out << "{\"group\":" << rec.group.value
            << ",\"replica\":" << rec.replica.value << ",\"event\":\""
            << to_string(rec.event) << "\",\"hop\":" << rec.hop
            << ",\"t_ms\":" << to_ms(rec.when) << "}";
      }
      out << "]}";
    } else {
      out << "null";
    }
  } else {
    out << "\"events_recorded\":0,\"events_dropped\":0,"
           "\"example_multi_hop\":null";
  }
  out << "}}\n";
}

void print_cdf(const std::string& label, const LatencyRecorder& recorder,
               std::size_t max_points) {
  std::printf("%s latency CDF (n=%zu):\n", label.c_str(), recorder.count());
  for (const auto& [ms, frac] : recorder.cdf(max_points)) {
    std::printf("  %8.2f ms  %5.3f\n", ms, frac);
  }
}

}  // namespace byzcast::workload
