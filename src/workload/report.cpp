#include "workload/report.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace byzcast::workload {

void print_header(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
}

void print_table(const std::vector<std::string>& columns,
                 const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(columns.size());
  for (std::size_t i = 0; i < columns.size(); ++i) {
    widths[i] = columns[i].size();
  }
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  const auto print_row = [&widths](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      std::printf("%-*s  ", static_cast<int>(widths[i]), cells[i].c_str());
    }
    std::printf("\n");
  };
  print_row(columns);
  std::string rule;
  for (const auto w : widths) rule += std::string(w, '-') + "  ";
  std::printf("%s\n", rule.c_str());
  for (const auto& row : rows) print_row(row);
}

std::string fmt(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  return os.str();
}

namespace {

std::ofstream open_csv(const std::string& path) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  return std::ofstream(path);
}

}  // namespace

void write_cdf_csv(const std::string& path, const LatencyRecorder& recorder,
                   std::size_t max_points) {
  auto out = open_csv(path);
  if (!out) return;
  out << "latency_ms,cdf\n";
  for (const auto& [ms, frac] : recorder.cdf(max_points)) {
    out << ms << ',' << frac << '\n';
  }
}

void write_series_csv(const std::string& path,
                      const std::vector<std::string>& columns,
                      const std::vector<std::vector<std::string>>& rows) {
  auto out = open_csv(path);
  if (!out) return;
  for (std::size_t i = 0; i < columns.size(); ++i) {
    out << (i ? "," : "") << columns[i];
  }
  out << '\n';
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      out << (i ? "," : "") << row[i];
    }
    out << '\n';
  }
}

void print_cdf(const std::string& label, const LatencyRecorder& recorder,
               std::size_t max_points) {
  std::printf("%s latency CDF (n=%zu):\n", label.c_str(), recorder.count());
  for (const auto& [ms, frac] : recorder.cdf(max_points)) {
    std::printf("  %8.2f ms  %5.3f\n", ms, frac);
  }
}

}  // namespace byzcast::workload
