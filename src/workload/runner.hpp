// WorkloadRunner: executes a WorkloadSpec on the simulator harness and
// returns structured results — one measured point for a fixed-rate spec, a
// point per segment for a step schedule, and full SweepCurves (baseline +
// one per ablation) for a sweep schedule. Also serializes outcomes to the
// BENCH_sweep.json schema ("byzcast-sweep-v1") consumed by
// tools/check_sweep.py and tools/plot_benches.py.
#pragma once

#include <string>
#include <vector>

#include "common/json.hpp"
#include "workload/spec.hpp"
#include "workload/sweep.hpp"

namespace byzcast::workload {

struct WorkloadOutcome {
  WorkloadSpec spec;
  /// Fixed mode: exactly one curve with one point (plus ablation flags
  /// applied). Step mode: one curve whose points are the segments. Sweep
  /// mode: baseline curve first, then one curve per spec ablation.
  std::vector<SweepCurve> curves;
};

/// Runs the spec to completion on the sim backend (every schedule point is
/// its own deterministic run; seeds derive from spec.base.seed).
[[nodiscard]] WorkloadOutcome run_workload(const WorkloadSpec& spec);

/// Serializes an outcome as the "byzcast-sweep-v1" document.
[[nodiscard]] Json outcome_to_json(const WorkloadOutcome& outcome);

}  // namespace byzcast::workload
