#include "workload/experiment.hpp"

#include <algorithm>
#include <vector>

#include "baseline/baseline.hpp"
#include "bft/client_proxy.hpp"
#include "bft/group.hpp"
#include "common/contracts.hpp"
#include "core/system.hpp"
#include "sim/sampler.hpp"
#include "sim/simulation.hpp"
#include "workload/rate.hpp"

namespace byzcast::workload {

const char* to_string(Protocol p) {
  switch (p) {
    case Protocol::kByzCast2Level: return "ByzCast-2L";
    case Protocol::kByzCast3Level: return "ByzCast-3L";
    case Protocol::kBaseline: return "Baseline";
    case Protocol::kBftSmart: return "BFT-SMaRt";
  }
  return "?";
}

const char* to_string(Environment e) {
  return e == Environment::kLan ? "LAN" : "WAN";
}

namespace {

std::vector<GroupId> make_target_ids(int n) {
  std::vector<GroupId> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(GroupId{i});
  return out;
}

/// Measurement sinks shared by all clients of a run.
struct Sinks {
  Time warmup_cutoff = 0;
  Time stop_issuing = 0;
  ExperimentResult* result = nullptr;
  ThroughputMeter all, local, global;
};

void record_completion(Sinks& sinks, Time now, Time latency, bool is_local) {
  ++sinks.result->completed;
  sinks.all.record(now);
  sinks.result->latency_all.record(now, latency);
  if (is_local) {
    sinks.local.record(now);
    sinks.result->latency_local.record(now, latency);
  } else {
    sinks.global.record(now);
    sinks.result->latency_global.record(now, latency);
  }
}

/// One closed-loop ByzCast/Baseline client with its generator.
struct CoreClientSlot {
  std::unique_ptr<core::Client> client;
  DestinationGenerator generator;
  Rng rng;

  CoreClientSlot(std::unique_ptr<core::Client> c, DestinationGenerator g,
                 Rng r)
      : client(std::move(c)), generator(std::move(g)), rng(r) {}

  void issue(Sinks& sinks, sim::Simulation& sim, std::size_t payload_size) {
    if (sim.now() >= sinks.stop_issuing) return;
    std::vector<GroupId> dst = generator.next(rng);
    const bool is_local = dst.size() == 1;
    Bytes payload(payload_size, 0xAB);
    client->a_multicast(
        std::move(dst), std::move(payload),
        [this, &sinks, &sim, payload_size, is_local](
            const core::MulticastMessage&, Time latency) {
          record_completion(sinks, sim.now(), latency, is_local);
          issue(sinks, sim, payload_size);
        });
  }

  /// Fires exactly one multicast to `dst` (open-loop arrivals; no re-issue
  /// on completion — the RateController owns the pacing).
  void fire_one(Sinks& sinks, sim::Simulation& sim, std::size_t payload_size,
                std::vector<GroupId> dst) {
    const bool is_local = dst.size() == 1;
    client->a_multicast(std::move(dst), Bytes(payload_size, 0xAB),
                        [&sinks, &sim, is_local](const core::MulticastMessage&,
                                                 Time latency) {
                          record_completion(sinks, sim.now(), latency,
                                            is_local);
                        });
  }
};

/// Central open-loop driver: ONE Poisson arrival process over the whole
/// client population (statistically the superposition of the old per-client
/// processes), each arrival fired from the next client round-robin. A class
/// mode of kLocal/kGlobal forces the destination class — two such drivers at
/// split rates implement ExperimentConfig::open_loop_local_share.
struct OpenLoopDriver {
  enum class Class { kPattern, kLocal, kGlobal };

  std::vector<CoreClientSlot>& clients;
  Sinks& sinks;
  sim::Simulation& sim;
  std::size_t payload_size;
  RateController controller;
  Class cls;
  std::size_t cursor = 0;

  OpenLoopDriver(std::vector<CoreClientSlot>& c, Sinks& s,
                 sim::Simulation& sm, std::size_t payload, double rate,
                 Rng rng, Class k)
      : clients(c), sinks(s), sim(sm), payload_size(payload),
        controller(rate, rng, sm.now()), cls(k) {}

  void arm() {
    const Time delay = controller.next_delay(sim.now());
    sim.scheduler().schedule_after(delay, [this] { fire(); });
  }

  void fire() {
    if (sim.now() >= sinks.stop_issuing) return;
    CoreClientSlot& slot = clients[cursor];
    cursor = (cursor + 1) % clients.size();
    std::vector<GroupId> dst;
    switch (cls) {
      case Class::kPattern: dst = slot.generator.next(slot.rng); break;
      case Class::kLocal: dst = slot.generator.next_local(slot.rng); break;
      case Class::kGlobal: dst = slot.generator.next_global(slot.rng); break;
    }
    slot.fire_one(sinks, sim, payload_size, std::move(dst));
    arm();
  }
};

/// One closed-loop client of the plain single-group broadcast.
struct ProxyClientSlot {
  std::unique_ptr<bft::ClientProxy> proxy;

  void issue(Sinks& sinks, sim::Simulation& sim, std::size_t payload_size) {
    if (sim.now() >= sinks.stop_issuing) return;
    Bytes payload(payload_size, 0xAB);
    proxy->invoke(std::move(payload),
                  [this, &sinks, &sim, payload_size](const Bytes&,
                                                     Time latency) {
                    record_completion(sinks, sim.now(), latency,
                                      /*is_local=*/true);
                    issue(sinks, sim, payload_size);
                  });
  }
};

/// Pins every replica of every group to a WAN region (replica i of each
/// group -> region i, as in the paper: "deploy each process of a group in a
/// different region", tolerating the failure of a whole region).
void assign_group_regions(sim::WanLatency& wan,
                          const core::GroupRegistry& registry) {
  for (const auto& [gid, info] : registry) {
    for (std::size_t i = 0; i < info.replicas().size(); ++i) {
      wan.assign(info.replicas()[i],
                 RegionId{static_cast<std::int32_t>(i % wan.num_regions())});
    }
  }
}

std::string replica_label(GroupId g, int index) {
  return to_string(g) + ".r" + std::to_string(index);
}

/// Per-group a-delivery counters restricted to the measurement window, and
/// per-replica protocol counters, pulled into the registry after the run.
void export_run_counters(MetricsRegistry& reg, core::ByzCastSystem& sys,
                         Time warmup, Time horizon) {
  for (const auto& rec : sys.delivery_log().records()) {
    if (rec.when >= warmup && rec.when < horizon) {
      reg.counter("group.a_deliveries." + to_string(rec.group)).inc();
    }
  }
  for (const auto& [gid, info] : sys.registry()) {
    auto& grp = sys.group(gid);
    for (int i = 0; i < grp.n(); ++i) {
      const auto& rep = grp.replica(i);
      const std::string label = replica_label(gid, i);
      reg.counter("replica.executed." + label).inc(rep.executed_requests());
      reg.counter("replica.decided." + label).inc(rep.decided_instances());
      reg.counter("replica.mac_memo_hits." + label).inc(rep.mac_memo_hits());
      reg.gauge("replica.cpu_busy_mean." + label)
          .set(static_cast<double>(rep.busy_time()) /
               static_cast<double>(horizon));
    }
  }
}

}  // namespace

ExperimentResult run_experiment(const ExperimentConfig& config) {
  BZC_EXPECTS(config.num_groups >= 1);
  BZC_EXPECTS(config.clients_per_group >= 1);
  BZC_EXPECTS(config.open_loop_total_rate == 0.0 ||
              config.protocol != Protocol::kBftSmart);

  const bool wan = config.environment == Environment::kWan;
  sim::Profile profile = wan ? sim::Profile::wan() : sim::Profile::lan();
  // Identical simulated behaviour, much cheaper host-side authentication
  // for the large sweeps (see Profile::fast_macs). The MAC ablation pair
  // needs real HMACs: the verification memo never engages under fast MACs.
  profile.fast_macs = !(config.real_macs || config.mac_memo_off);
  profile.mac_memo_off = config.mac_memo_off;
  profile.zero_copy_off = config.zero_copy_off;
  profile.batch_adapt_off = config.batch_adapt_off;
  if (config.pipeline_depth > 0) profile.pipeline_depth = config.pipeline_depth;
  if (config.batch_max > 0) profile.batch_max = config.batch_max;
  if (config.batch_min > 0) profile.batch_min = config.batch_min;
  if (config.batch_timeout > 0) profile.batch_timeout = config.batch_timeout;
  if (config.pipeline_off) profile.pipeline_depth = 1;
  profile.verify_workers = config.verify_workers;
  profile.exec_shards = config.exec_shards;
  profile.stage_pipeline_off = config.stage_pipeline_off;

  std::unique_ptr<sim::Simulation> sim;
  sim::WanLatency* wan_model = nullptr;
  if (wan) {
    auto latency = std::make_unique<sim::WanLatency>(
        sim::WanLatency::ec2_four_regions(profile));
    wan_model = latency.get();
    sim = std::make_unique<sim::Simulation>(config.seed, profile,
                                            std::move(latency));
  } else {
    sim = std::make_unique<sim::Simulation>(config.seed, profile);
  }

  ExperimentResult result;
  Sinks sinks;
  sinks.warmup_cutoff = config.warmup;
  sinks.stop_issuing = config.warmup + config.duration;
  sinks.result = &result;
  result.latency_all.set_warmup(config.warmup);
  result.latency_local.set_warmup(config.warmup);
  result.latency_global.set_warmup(config.warmup);

  const Time horizon = config.warmup + config.duration;

  if (config.open_loop_total_rate > 0.0) {
    // Open loop: the offered load bounds the sample count, so pre-reserve
    // (no mid-run reallocation in the measurement path) and cap at a loose
    // multiple of the expectation — a runaway shows up as a nonzero
    // overflow() counter instead of silently eating the host's memory.
    // Closed-loop runs are completion-paced and self-limiting.
    const auto expected_completions = static_cast<std::size_t>(
        config.open_loop_total_rate * to_sec(config.duration));
    const auto expected_events = static_cast<std::size_t>(
        config.open_loop_total_rate * to_sec(horizon));
    const auto with_margin = [](std::size_t n) { return n + n / 4 + 1024; };
    for (LatencyRecorder* rec :
         {&result.latency_all, &result.latency_local,
          &result.latency_global}) {
      rec->reserve(with_margin(expected_completions));
      rec->set_max_samples(8 * expected_completions + 8192);
    }
    for (ThroughputMeter* meter : {&sinks.all, &sinks.local, &sinks.global}) {
      meter->reserve(with_margin(expected_events));
      meter->set_max_events(8 * expected_events + 8192);
    }
  }

  Observability obs;
  std::unique_ptr<sim::MetricsSampler> sampler;
  if (config.observability) {
    result.metrics = std::make_shared<MetricsRegistry>();
    result.trace = std::make_shared<TraceLog>(config.trace_capacity);
    obs.metrics = result.metrics.get();
    obs.trace = result.trace.get();
    if (config.span_tracing) {
      result.spans = std::make_shared<SpanLog>(config.span_capacity);
      obs.spans = result.spans.get();
    }
    if (config.monitors) {
      result.monitors = std::make_shared<MonitorHub>();
      result.monitors->attach_metrics(result.metrics.get());
      if (config.monitor_pending_bound > 0) {
        result.monitors->set_pending_bound(config.monitor_pending_bound);
      }
      obs.monitors = result.monitors.get();
    }
    sim->attach_observability(obs);
    sampler = std::make_unique<sim::MetricsSampler>(*sim, *result.metrics,
                                                    config.sample_interval);
  }
  const std::vector<GroupId> targets = make_target_ids(config.num_groups);
  const int total_clients = config.clients_per_group * config.num_groups;

  if (config.protocol == Protocol::kBftSmart) {
    // Single group, echo application, plain broadcast clients.
    const bft::AppFactory factory = [](int) {
      return std::make_unique<bft::EchoApplication>();
    };
    bft::Group group(*sim, GroupId{0}, config.f, factory);
    std::vector<ProxyClientSlot> clients;
    clients.reserve(static_cast<std::size_t>(total_clients));
    for (int c = 0; c < total_clients; ++c) {
      clients.push_back(ProxyClientSlot{std::make_unique<bft::ClientProxy>(
          *sim, group.info(), "client" + std::to_string(c))});
    }
    if (wan_model) {
      for (std::size_t i = 0; i < group.info().replicas().size(); ++i) {
        wan_model->assign(group.info().replicas()[i],
                          RegionId{static_cast<std::int32_t>(
                              i % wan_model->num_regions())});
      }
      for (std::size_t c = 0; c < clients.size(); ++c) {
        wan_model->assign(clients[c].proxy->id(),
                          RegionId{static_cast<std::int32_t>(
                              c % wan_model->num_regions())});
      }
    }
    if (sampler) {
      for (int i = 0; i < group.n(); ++i) {
        sampler->watch(group.replica(i), replica_label(group.id(), i));
      }
      sampler->start(horizon);
    }
    for (auto& slot : clients) slot.issue(sinks, *sim, config.payload_size);
    sim->run_until(horizon);
    result.wire_messages = sim->network().messages_sent();
    if (obs.metrics != nullptr) {
      for (int i = 0; i < group.n(); ++i) {
        const auto& rep = group.replica(i);
        const std::string label = replica_label(group.id(), i);
        obs.metrics->counter("replica.executed." + label)
            .inc(rep.executed_requests());
        obs.metrics->gauge("replica.cpu_busy_mean." + label)
            .set(static_cast<double>(rep.busy_time()) /
                 static_cast<double>(horizon));
      }
    }
  } else {
    // Assemble the tree-based protocols.
    std::unique_ptr<core::ByzCastSystem> system;
    std::unique_ptr<baseline::BaselineSystem> base;
    core::ByzCastSystem* sys = nullptr;
    const GroupId aux_root{config.num_groups};
    switch (config.protocol) {
      case Protocol::kByzCast2Level:
        system = std::make_unique<core::ByzCastSystem>(
            *sim, core::OverlayTree::two_level(targets, aux_root), config.f,
            core::FaultPlan{}, core::Routing::kGenuine, obs);
        sys = system.get();
        break;
      case Protocol::kByzCast3Level: {
        const GroupId h1{config.num_groups};
        const GroupId h2{config.num_groups + 1};
        const GroupId h3{config.num_groups + 2};
        system = std::make_unique<core::ByzCastSystem>(
            *sim, core::OverlayTree::three_level(targets, h1, h2, h3),
            config.f, core::FaultPlan{}, core::Routing::kGenuine, obs);
        sys = system.get();
        break;
      }
      case Protocol::kBaseline:
        base = std::make_unique<baseline::BaselineSystem>(
            *sim, targets, aux_root, config.f, core::FaultPlan{}, obs);
        sys = &base->system();
        break;
      case Protocol::kBftSmart:
        BZC_ASSERT(false);
    }

    if (sampler) {
      for (const auto& [gid, info] : sys->registry()) {
        auto& grp = sys->group(gid);
        for (int i = 0; i < grp.n(); ++i) {
          sampler->watch(grp.replica(i), replica_label(gid, i));
        }
      }
      sampler->start(horizon);
    }

    std::vector<CoreClientSlot> clients;
    clients.reserve(static_cast<std::size_t>(total_clients));
    Rng seeder(config.seed ^ 0x5bd1e995);
    for (int c = 0; c < total_clients; ++c) {
      const auto home =
          static_cast<std::size_t>(c % config.num_groups);
      clients.emplace_back(
          sys->make_client("client" + std::to_string(c)),
          DestinationGenerator(config.workload, targets, home),
          seeder.fork());
      if (obs.spans != nullptr) {
        clients.back().client->set_trace_sample_every(
            config.span_sample_every);
      }
    }
    if (wan_model) {
      assign_group_regions(*wan_model, sys->registry());
      for (std::size_t c = 0; c < clients.size(); ++c) {
        wan_model->assign(clients[c].client->id(),
                          RegionId{static_cast<std::int32_t>(
                              c % wan_model->num_regions())});
      }
    }
    std::vector<std::unique_ptr<OpenLoopDriver>> drivers;
    if (config.open_loop_total_rate > 0.0) {
      Rng driver_rng(config.seed ^ 0x9e3779b97f4a7c15ULL);
      const double total = config.open_loop_total_rate;
      if (config.open_loop_local_share >= 0.0) {
        const double share =
            std::min(1.0, std::max(0.0, config.open_loop_local_share));
        const double local_rate = total * share;
        const double global_rate = total - local_rate;
        if (local_rate > 0.0) {
          drivers.push_back(std::make_unique<OpenLoopDriver>(
              clients, sinks, *sim, config.payload_size, local_rate,
              driver_rng.fork(), OpenLoopDriver::Class::kLocal));
        }
        if (global_rate > 0.0) {
          drivers.push_back(std::make_unique<OpenLoopDriver>(
              clients, sinks, *sim, config.payload_size, global_rate,
              driver_rng.fork(), OpenLoopDriver::Class::kGlobal));
        }
      } else {
        drivers.push_back(std::make_unique<OpenLoopDriver>(
            clients, sinks, *sim, config.payload_size, total,
            driver_rng.fork(), OpenLoopDriver::Class::kPattern));
      }
      for (auto& d : drivers) d->arm();
    } else {
      for (auto& slot : clients) slot.issue(sinks, *sim, config.payload_size);
    }
    sim->run_until(horizon);

    for (const auto& rec : sys->delivery_log().records()) {
      if (rec.when >= config.warmup && rec.when < horizon) {
        ++result.a_deliveries;
      }
    }
    result.wire_messages = sim->network().messages_sent();
    if (obs.metrics != nullptr) {
      export_run_counters(*obs.metrics, *sys, config.warmup, horizon);
    }
  }

  result.throughput = sinks.all.rate_per_sec(config.warmup, horizon);
  result.throughput_local = sinks.local.rate_per_sec(config.warmup, horizon);
  result.throughput_global =
      sinks.global.rate_per_sec(config.warmup, horizon);
  if (obs.metrics != nullptr) {
    // Sampled completion-rate timeseries over the measurement window — the
    // "throughput over time" view that exposes when saturation sets in.
    auto& ts = obs.metrics->timeseries("workload.throughput.all");
    for (const auto& [when, rate] :
         sinks.all.timeseries(config.warmup, horizon,
                              config.sample_interval)) {
      ts.append(when, rate);
    }
  }
  return result;
}

}  // namespace byzcast::workload
