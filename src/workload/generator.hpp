// Destination generators for the paper's microbenchmark workloads (§V):
// local-only, global uniform pairs, the Table II skewed pairs, and the mixed
// 10:1 local:global workload of §V-G/§V-I.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace byzcast::workload {

enum class Pattern {
  /// Single-group messages to the client's home group.
  kLocalOnly,
  /// Two-group messages, destination pair uniform over all pairs.
  kGlobalUniformPairs,
  /// Two-group messages to {g1,g2} or {g3,g4} only (Table II skewed).
  kGlobalSkewedPairs,
  /// local:global = `mixed_local` : `mixed_global` (paper uses 10:1);
  /// local goes to the home group, global to a uniform pair.
  kMixed,
  /// Global messages to `global_fanout` distinct uniformly chosen groups
  /// (the paper's "vary the number of message destinations", §V-B2).
  kGlobalFanout,
};

struct GeneratorConfig {
  Pattern pattern = Pattern::kLocalOnly;
  int mixed_local = 10;
  int mixed_global = 1;
  int global_fanout = 2;  // used by kGlobalFanout
};

/// Samples destination sets for one client.
class DestinationGenerator {
 public:
  /// `home` is the index into `targets` of the client's home group.
  DestinationGenerator(GeneratorConfig config, std::vector<GroupId> targets,
                       std::size_t home);

  [[nodiscard]] std::vector<GroupId> next(Rng& rng);

 private:
  [[nodiscard]] std::vector<GroupId> uniform_pair(Rng& rng) const;

  GeneratorConfig config_;
  std::vector<GroupId> targets_;
  std::size_t home_;
};

}  // namespace byzcast::workload
