// Destination generators for the paper's microbenchmark workloads (§V):
// local-only, global uniform pairs, the Table II skewed pairs, the mixed
// 10:1 local:global workload of §V-G/§V-I, and the workload engine's
// Zipf-skewed destinations (hot groups attract most of the traffic).
#pragma once

#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "workload/zipf.hpp"

namespace byzcast::workload {

enum class Pattern {
  /// Single-group messages to the client's home group.
  kLocalOnly,
  /// Two-group messages, destination pair uniform over all pairs.
  kGlobalUniformPairs,
  /// Two-group messages to {g1,g2} or {g3,g4} only (Table II skewed).
  kGlobalSkewedPairs,
  /// local:global = `mixed_local` : `mixed_global` (paper uses 10:1);
  /// local goes to the home group, global to a uniform pair.
  kMixed,
  /// Global messages to `global_fanout` distinct uniformly chosen groups
  /// (the paper's "vary the number of message destinations", §V-B2).
  kGlobalFanout,
  /// Zipf-skewed destinations: local messages target a single group drawn
  /// Zipf(`zipf_s`) over all groups (group 0 hottest); global messages
  /// target `global_fanout` distinct groups, each drawn from the same Zipf
  /// marginal — so hot groups co-occur in destination sets, concentrating
  /// load on the subtree that connects them. The local:global mix follows
  /// `mixed_local`:`mixed_global` (under per-class open-loop pacing the
  /// forced-class draws are used instead and the mix comes from the rates).
  kZipf,
};

struct GeneratorConfig {
  Pattern pattern = Pattern::kLocalOnly;
  int mixed_local = 10;
  int mixed_global = 1;
  int global_fanout = 2;  // used by kGlobalFanout and kZipf
  /// Skew exponent for kZipf; 0 = uniform over groups.
  double zipf_s = 0.0;
};

/// Samples destination sets for one client.
class DestinationGenerator {
 public:
  /// `home` is the index into `targets` of the client's home group.
  DestinationGenerator(GeneratorConfig config, std::vector<GroupId> targets,
                       std::size_t home);

  [[nodiscard]] std::vector<GroupId> next(Rng& rng);

  /// Forced-class draws for per-class open-loop pacing: the RateController
  /// decides *when* a local or global message fires, these decide *where*
  /// it goes under the configured pattern.
  [[nodiscard]] std::vector<GroupId> next_local(Rng& rng);
  [[nodiscard]] std::vector<GroupId> next_global(Rng& rng);

 private:
  [[nodiscard]] std::vector<GroupId> uniform_pair(Rng& rng) const;
  [[nodiscard]] std::vector<GroupId> fanout_uniform(Rng& rng) const;
  [[nodiscard]] std::vector<GroupId> zipf_single(Rng& rng) const;
  [[nodiscard]] std::vector<GroupId> zipf_fanout(Rng& rng) const;

  GeneratorConfig config_;
  std::vector<GroupId> targets_;
  std::size_t home_;
  std::optional<ZipfSampler> zipf_;
};

}  // namespace byzcast::workload
