#include "net/collector.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <fstream>
#include <memory>

#include "common/span_export.hpp"
#include "core/critical_path.hpp"

namespace byzcast::net {

namespace {

bool fail(std::string* error, const std::string& what) {
  if (error) *error = what;
  return false;
}

/// kind as a small int is the machine-readable field; the name rides along
/// for humans reading the scrape by hand.
constexpr int kMaxSpanKind = static_cast<int>(SpanKind::kConsensusInstance);

Json span_to_json(const Span& s) {
  Json j = Json::object();
  j.set("origin", Json::number(s.msg.origin.value));
  j.set("seq", Json::number(s.msg.seq));
  j.set("kind", Json::number(static_cast<int>(s.kind)));
  j.set("kind_name", Json::string(to_string(s.kind)));
  j.set("group", Json::number(s.group.value));
  j.set("where", Json::number(s.where.value));
  j.set("begin_ns", Json::number(s.begin));
  j.set("end_ns", Json::number(s.end));
  j.set("detail", Json::number(s.detail));
  return j;
}

std::optional<Span> span_from_json(const Json& j) {
  if (!j.is_object()) return std::nullopt;
  const std::int64_t kind = j.int_or("kind", -1);
  if (kind < 0 || kind > kMaxSpanKind) return std::nullopt;
  Span s;
  s.msg.origin = ProcessId(static_cast<std::int32_t>(j.int_or("origin", -1)));
  s.msg.seq = static_cast<std::uint64_t>(j.int_or("seq", 0));
  s.kind = static_cast<SpanKind>(kind);
  s.group = GroupId(static_cast<std::int32_t>(j.int_or("group", -1)));
  s.where = ProcessId(static_cast<std::int32_t>(j.int_or("where", -1)));
  s.begin = j.int_or("begin_ns", 0);
  s.end = j.int_or("end_ns", 0);
  s.detail = j.int_or("detail", 0);
  return s;
}

}  // namespace

Json raw_spans_json(const SpanLog& log, const std::string& node, Time now_ns,
                    std::size_t from) {
  const std::vector<Span>& spans = log.spans();
  Json j = Json::object();
  j.set("schema", Json::string(kRawSpansSchema));
  j.set("node", Json::string(node));
  j.set("now_ns", Json::number(now_ns));
  j.set("spans_recorded", Json::number(spans.size()));
  j.set("spans_dropped", Json::number(log.dropped()));
  j.set("from", Json::number(from));
  Json arr = Json::array();
  for (std::size_t i = std::min(from, spans.size()); i < spans.size(); ++i) {
    arr.push_back(span_to_json(spans[i]));
  }
  j.set("spans", std::move(arr));
  return j;
}

std::optional<RawSpans> raw_spans_from_json(const Json& j,
                                            std::string* error) {
  if (!j.is_object() || !j.has("schema") ||
      j.get("schema").as_string() != kRawSpansSchema) {
    fail(error, std::string("expected schema ") + kRawSpansSchema);
    return std::nullopt;
  }
  RawSpans out;
  out.node = j.get("node").as_string();
  out.now_ns = j.int_or("now_ns", 0);
  out.recorded = static_cast<std::uint64_t>(j.int_or("spans_recorded", 0));
  out.dropped = static_cast<std::uint64_t>(j.int_or("spans_dropped", 0));
  out.from = static_cast<std::size_t>(j.int_or("from", 0));
  const Json& arr = j.get("spans");
  if (!arr.is_array()) {
    fail(error, "\"spans\" must be an array");
    return std::nullopt;
  }
  out.spans.reserve(arr.size());
  for (std::size_t i = 0; i < arr.size(); ++i) {
    const auto s = span_from_json(arr.at(i));
    if (!s) {
      fail(error, "malformed span at index " + std::to_string(i));
      return std::nullopt;
    }
    out.spans.push_back(*s);
  }
  return out;
}

// --- HTTP client -----------------------------------------------------------

namespace {

/// poll() for `events` with a deadline; false on timeout/error.
bool wait_fd(int fd, short events, int timeout_ms) {
  pollfd p{};
  p.fd = fd;
  p.events = events;
  while (true) {
    const int rc = ::poll(&p, 1, timeout_ms);
    if (rc > 0) return (p.revents & (events | POLLHUP | POLLERR)) != 0;
    if (rc == 0) return false;
    if (errno != EINTR) return false;
  }
}

}  // namespace

std::optional<std::string> http_get(const std::string& host,
                                    std::uint16_t port,
                                    const std::string& target, int timeout_ms,
                                    std::string* error) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (host.empty() || host == "localhost" || host == "0.0.0.0") {
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  } else if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    fail(error, "unresolvable host: " + host);
    return std::nullopt;
  }
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    fail(error, "socket: " + std::string(::strerror(errno)));
    return std::nullopt;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  const auto closed_fail = [&](const std::string& what) {
    ::close(fd);
    fail(error, what + " (" + host + ":" + std::to_string(port) + target +
                    ")");
    return std::nullopt;
  };
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 &&
      errno != EINPROGRESS) {
    return closed_fail("connect: " + std::string(::strerror(errno)));
  }
  if (!wait_fd(fd, POLLOUT, timeout_ms)) {
    return closed_fail("connect timeout");
  }
  int soerr = 0;
  socklen_t len = sizeof soerr;
  ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len);
  if (soerr != 0) {
    return closed_fail("connect: " + std::string(::strerror(soerr)));
  }

  const std::string request = "GET " + target + " HTTP/1.0\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  std::size_t written = 0;
  while (written < request.size()) {
    const ssize_t n = ::write(fd, request.data() + written,
                              request.size() - written);
    if (n > 0) {
      written += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!wait_fd(fd, POLLOUT, timeout_ms)) {
        return closed_fail("write timeout");
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return closed_fail("write: " + std::string(::strerror(errno)));
  }

  std::string response;
  char buf[16 * 1024];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n > 0) {
      response.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) break;  // EOF: HTTP/1.0 close delimits the body
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!wait_fd(fd, POLLIN, timeout_ms)) {
        return closed_fail("read timeout");
      }
      continue;
    }
    if (errno == EINTR) continue;
    return closed_fail("read: " + std::string(::strerror(errno)));
  }
  ::close(fd);

  const std::size_t line_end = response.find("\r\n");
  const std::size_t header_end = response.find("\r\n\r\n");
  if (line_end == std::string::npos || header_end == std::string::npos) {
    fail(error, "malformed HTTP response from " + host + ":" +
                    std::to_string(port) + target);
    return std::nullopt;
  }
  const std::string status_line = response.substr(0, line_end);
  if (status_line.find(" 200") == std::string::npos) {
    fail(error, "HTTP error from " + host + ":" + std::to_string(port) +
                    target + ": " + status_line);
    return std::nullopt;
  }
  return response.substr(header_end + 4);
}

// --- clock alignment -------------------------------------------------------

Time collector_now() {
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

std::optional<ClockEstimate> estimate_clock_offset(const std::string& host,
                                                   std::uint16_t port,
                                                   int samples,
                                                   int timeout_ms,
                                                   std::string* error) {
  ClockEstimate best;
  for (int i = 0; i < samples; ++i) {
    const Time t0 = collector_now();
    const auto body = http_get(host, port,
                               "/clock?t0=" + std::to_string(t0), timeout_ms,
                               error);
    const Time t3 = collector_now();
    if (!body) continue;
    const auto j = Json::parse(*body, error);
    if (!j || !j->is_object()) continue;
    if (j->int_or("t0", -1) != t0) continue;  // crossed responses
    const Time node_now = j->int_or("now_ns", -1);
    if (node_now < 0) continue;
    const Time rtt = t3 - t0;
    if (best.samples == 0 || rtt <= best.min_rtt) {
      best.min_rtt = rtt;
      best.offset = node_now - (t0 + t3) / 2;
    }
    ++best.samples;
  }
  if (best.samples == 0) {
    // `error` already carries the last failure's prose.
    return std::nullopt;
  }
  return best;
}

// --- scrape & merge --------------------------------------------------------

std::vector<ScrapeTarget> introspect_targets(const ClusterConfig& cfg) {
  std::vector<ScrapeTarget> out;
  for (const GroupSpec& g : cfg.groups) {
    for (std::size_t i = 0; i < g.replicas.size(); ++i) {
      const Endpoint& ep = g.replicas[i];
      if (ep.introspect_port == 0) continue;
      std::string name = "g";
      name += std::to_string(g.id.value);
      name += "_r";
      name += std::to_string(i);
      out.push_back(ScrapeTarget{std::move(name), ep.host,
                                 ep.introspect_port});
    }
  }
  if (cfg.client_introspect_port != 0) {
    out.push_back(
        ScrapeTarget{"client", "localhost", cfg.client_introspect_port});
  }
  return out;
}

namespace {

void json_components(std::ostream& out, const core::Components& c) {
  out << "{\"queueing_ns\":" << c.queueing << ",\"cpu_ns\":" << c.cpu
      << ",\"network_ns\":" << c.network
      << ",\"quorum_wait_ns\":" << c.quorum_wait << "}";
}

void json_pcts(std::ostream& out, const core::PercentileStats& s) {
  out << "{\"n\":" << s.n << ",\"p50_ns\":" << s.p50 << ",\"p99_ns\":" << s.p99
      << "}";
}

void json_aggregate(std::ostream& out, const core::ClassAggregate& a) {
  out << "{\"n\":" << a.n << ",\"end_to_end\":";
  json_pcts(out, a.end_to_end);
  out << ",\"queueing\":";
  json_pcts(out, a.queueing);
  out << ",\"cpu\":";
  json_pcts(out, a.cpu);
  out << ",\"network\":";
  json_pcts(out, a.network);
  out << ",\"quorum_wait\":";
  json_pcts(out, a.quorum_wait);
  out << "}";
}

/// The merged sidecar: byte-compatible with workload::write_span_sidecar's
/// byzcast-spans-v1 (so check_trace.py / plot_benches.py consume it
/// unchanged), with the monitor section fed from the /healthz scrapes and
/// one extra "cluster" object describing the per-process captures and
/// clock corrections.
bool write_merged_sidecar(const std::string& path, const SpanLog& log, int f,
                          const MergeResult& result,
                          const core::CriticalPathAnalyzer& analyzer,
                          std::string* error) {
  std::ofstream out(path);
  if (!out) return fail(error, "cannot write " + path);

  out << "{\"schema\":\"" << kMergedSpansSchema << "\"";
  out << ",\"f\":" << f;
  out << ",\"spans_recorded\":" << log.spans().size();
  out << ",\"spans_dropped\":" << result.spans_dropped;

  out << ",\"messages\":[";
  bool first = true;
  for (const auto& m : analyzer.messages()) {
    if (!first) out << ",";
    first = false;
    out << "{\"id\":\"p" << m.id.origin.value << ":" << m.id.seq
        << "\",\"complete\":" << (m.complete ? "true" : "false")
        << ",\"dst_count\":" << m.dst_count
        << ",\"global\":" << (m.is_global ? "true" : "false")
        << ",\"submitted_ns\":" << m.submitted
        << ",\"end_to_end_ns\":" << m.end_to_end;
    if (m.complete) {
      out << ",\"critical_dst\":" << m.critical_dst.value << ",\"totals\":";
      json_components(out, m.totals);
      out << ",\"hops\":[";
      bool hop_first = true;
      for (const auto& h : m.hops) {
        if (!hop_first) out << ",";
        hop_first = false;
        out << "{\"group\":" << h.group.value
            << ",\"replica\":" << h.replica.value << ",\"components\":";
        json_components(out, h.components);
        out << "}";
      }
      out << "]";
    }
    out << "}";
  }
  out << "]";

  out << ",\"aggregates\":{\"local\":";
  json_aggregate(out, analyzer.aggregate(/*global=*/false));
  out << ",\"global\":";
  json_aggregate(out, analyzer.aggregate(/*global=*/true));
  out << "}";

  out << ",\"edges\":[";
  first = true;
  for (const auto& [edge, stats] : analyzer.edge_latency()) {
    if (!first) out << ",";
    first = false;
    out << "{\"parent\":" << edge.first.value
        << ",\"child\":" << edge.second.value << ",\"stats\":";
    json_pcts(out, stats);
    out << "}";
  }
  out << "]";

  // Summed across every /healthz that answered; per-monitor names match the
  // in-process writer so validators treat both identically.
  out << ",\"monitor\":";
  std::uint64_t fifo = 0;
  std::uint64_t agreement = 0;
  std::uint64_t acyclic = 0;
  std::uint64_t pending = 0;
  bool any_healthz = false;
  for (const NodeCapture& node : result.nodes) {
    const Json& h = node.healthz;
    if (!h.is_object() || !h.get("monitor").is_object()) continue;
    any_healthz = true;
    const Json& m = h.get("monitor");
    fifo += static_cast<std::uint64_t>(m.int_or("fifo", 0));
    agreement += static_cast<std::uint64_t>(m.int_or("group_agreement", 0));
    acyclic += static_cast<std::uint64_t>(m.int_or("acyclic_order", 0));
    pending += static_cast<std::uint64_t>(m.int_or("bounded_pending", 0));
  }
  if (any_healthz) {
    out << "{\"violations_total\":" << result.monitor_violations
        << ",\"fifo\":" << fifo << ",\"group_agreement\":" << agreement
        << ",\"acyclic_order\":" << acyclic
        << ",\"bounded_pending\":" << pending << "}";
  } else {
    out << "null";
  }

  out << ",\"cluster\":{\"nodes\":[";
  first = true;
  for (const NodeCapture& node : result.nodes) {
    if (!first) out << ",";
    first = false;
    out << "{\"node\":\"" << node.target.name
        << "\",\"ok\":" << (node.ok ? "true" : "false");
    if (node.ok) {
      out << ",\"clock_offset_ns\":" << node.clock.offset
          << ",\"clock_min_rtt_ns\":" << node.clock.min_rtt
          << ",\"clock_samples\":" << node.clock.samples
          << ",\"spans\":" << node.raw.spans.size()
          << ",\"spans_dropped\":" << node.raw.dropped;
    } else {
      // Prose only; escape the two characters that can break the JSON.
      std::string msg;
      for (const char c : node.error) {
        if (c == '"' || c == '\\') msg += '\\';
        msg += c;
      }
      out << ",\"error\":\"" << msg << "\"";
    }
    out << "}";
  }
  out << "]}";
  out << "}\n";
  return out.good();
}

}  // namespace

MergeResult collect_and_merge(const ClusterConfig& cfg,
                              const std::string& out_dir, int clock_samples,
                              int timeout_ms) {
  MergeResult result;
  const std::vector<ScrapeTarget> targets = introspect_targets(cfg);
  if (targets.empty()) {
    result.error = "no process in this config has an introspect_port";
    return result;
  }

  std::vector<Span> merged;
  for (const ScrapeTarget& target : targets) {
    NodeCapture capture;
    capture.target = target;
    std::string error;
    const auto clock = estimate_clock_offset(target.host, target.port,
                                             clock_samples, timeout_ms,
                                             &error);
    if (!clock) {
      capture.error = "clock: " + error;
      result.nodes.push_back(std::move(capture));
      continue;
    }
    capture.clock = *clock;
    const auto body =
        http_get(target.host, target.port, "/spans", timeout_ms, &error);
    if (!body) {
      capture.error = error;
      result.nodes.push_back(std::move(capture));
      continue;
    }
    const auto parsed = Json::parse(*body, &error);
    const auto raw = parsed ? raw_spans_from_json(*parsed, &error)
                            : std::nullopt;
    if (!raw) {
      capture.error = "spans: " + error;
      result.nodes.push_back(std::move(capture));
      continue;
    }
    capture.raw = *raw;
    if (const auto health =
            http_get(target.host, target.port, "/healthz", timeout_ms,
                     &error)) {
      if (const auto hj = Json::parse(*health, &error)) {
        capture.healthz = *hj;
        result.monitor_violations += static_cast<std::uint64_t>(
            hj->get("monitor").int_or("violations_total", 0));
      }
    }
    capture.ok = true;
    ++result.scraped_ok;
    result.spans_dropped += capture.raw.dropped;
    for (Span s : capture.raw.spans) {
      s.begin -= capture.clock.offset;
      s.end -= capture.clock.offset;
      merged.push_back(s);
    }
    result.nodes.push_back(std::move(capture));
  }

  if (result.scraped_ok == 0) {
    result.error = "no introspection endpoint reachable";
    for (const NodeCapture& n : result.nodes) {
      result.error += "; " + n.target.name + ": " + n.error;
    }
    return result;
  }

  // Deterministic merge order: the per-node scrape order is fixed, but the
  // interleaving should not depend on it.
  std::stable_sort(merged.begin(), merged.end(),
                   [](const Span& a, const Span& b) {
                     if (a.begin != b.begin) return a.begin < b.begin;
                     return a.end < b.end;
                   });
  // Re-origin the merged timeline at its earliest span. Node clocks start
  // at each process's loop construction, so aligned times are negative for
  // anything stamped before the collector's own epoch — and downstream
  // consumers (the critical-path chain times, the trace-event writer) treat
  // negative times as the "absent" sentinel. Only intervals matter, so a
  // uniform shift is free.
  if (!merged.empty()) {
    const Time origin = merged.front().begin;
    for (Span& s : merged) {
      s.begin -= origin;
      s.end -= origin;
    }
  }
  SpanLog log(merged.size() + 1);
  for (const Span& s : merged) log.record(s);
  result.merged_spans = log.spans().size();

  core::CriticalPathAnalyzer analyzer(
      log, core::CriticalPathAnalyzer::Options{cfg.f});
  result.traced_messages = analyzer.messages().size();
  for (const auto& m : analyzer.messages()) {
    if (m.complete) ++result.complete_messages;
  }

  std::string error;
  if (!write_merged_sidecar(out_dir + "/cluster_spans.json", log, cfg.f,
                            result, analyzer, &error)) {
    result.error = error;
    return result;
  }
  std::ofstream trace(out_dir + "/cluster_trace.json");
  if (!trace) {
    result.error = "cannot write " + out_dir + "/cluster_trace.json";
    return result;
  }
  trace << chrome_trace_json(log);
  if (!trace.good()) {
    result.error = "short write to " + out_dir + "/cluster_trace.json";
    return result;
  }
  result.ok = true;
  return result;
}

}  // namespace byzcast::net
