// Single-threaded epoll event loop: fd readiness callbacks, a deadline-heap
// timer queue and a thread-safe task post (eventfd wakeup). One loop hosts
// one NetEnv: every actor of the process runs on the loop thread, which is
// what gives the ExecutionEnv contract its "one owner, one thread at a time"
// serialization for free — the net backend's analogue of the runtime
// backend's per-worker mailboxes.
//
// Thread rules: run() owns the loop on whichever thread calls it. post() and
// request_stop() are safe from any thread (request_stop also from signal
// handlers: an atomic store plus an eventfd write, both async-signal-safe).
// Everything else — add_fd/mod_fd/del_fd, schedule — is loop-thread-only
// once the loop runs (wiring before run() is fine).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace byzcast::net {

class EventLoop {
 public:
  using FdCallback = std::function<void(std::uint32_t epoll_events)>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Monotone ns since loop construction (steady clock).
  [[nodiscard]] Time now() const;

  /// Registers `fd` for `events` (EPOLLIN/EPOLLOUT/...); `cb` runs on the
  /// loop thread with the ready event mask. The fd stays owned by the
  /// caller; del_fd() before closing it.
  void add_fd(int fd, std::uint32_t events, FdCallback cb);
  void mod_fd(int fd, std::uint32_t events);
  void del_fd(int fd);

  /// Enqueues `fn` to run on the loop thread; safe from any thread. Tasks
  /// run FIFO, after fd events of the current iteration.
  void post(std::function<void()> fn);

  /// Runs `fn` after `delay` ns on the loop thread. Loop thread (or
  /// pre-run) only. Sub-millisecond delays round to the epoll tick but
  /// never fire early.
  void schedule(Time delay, std::function<void()> fn);

  /// Blocks servicing events until request_stop(). Pending posted tasks run
  /// before returning; pending timers and fd registrations are dropped.
  void run();

  /// Stops the loop from any thread or a signal handler.
  void request_stop();

  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool in_loop_thread() const {
    return std::this_thread::get_id() == loop_thread_;
  }

 private:
  struct Timer {
    Time deadline;
    std::uint64_t seq;  // FIFO among equal deadlines
    std::function<void()> fn;
    friend bool operator>(const Timer& a, const Timer& b) {
      if (a.deadline != b.deadline) return a.deadline > b.deadline;
      return a.seq > b.seq;
    }
  };

  void drain_posted();
  void run_due_timers();
  [[nodiscard]] int next_timeout_ms() const;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd
  std::chrono::steady_clock::time_point epoch_;

  std::unordered_map<int, FdCallback> fd_callbacks_;

  std::mutex posted_mu_;
  std::vector<std::function<void()>> posted_;

  std::priority_queue<Timer, std::vector<Timer>, std::greater<Timer>> timers_;
  std::uint64_t timer_seq_ = 0;

  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> running_{false};
  std::thread::id loop_thread_;
};

}  // namespace byzcast::net
