// byzcastd: one ByzCast replica as an OS process. Loads the shared cluster
// config, binds its configured endpoint, dials every other replica and runs
// its event loop until SIGINT/SIGTERM. Shutdown is graceful: the signal
// handler only sets a flag (async-signal-safe); a periodic loop timer
// notices it, waits for the delivery log to go quiet (2.5s stable, 15s
// cap — long enough for a straggler's anti-entropy catch-up), flushes the
// delivery dump and metrics sidecar to --out-dir, tears the sockets down
// and exits 0.
//
// SIGUSR1 writes the artifacts (delivery dump + metrics sidecar) on demand
// without exiting — the multi-process harness uses it to capture survivor
// state mid-run. When the config gives this seat an introspect_port, the
// daemon also serves live HTTP introspection (/metrics, /healthz, /spans,
// /dump, /clock) on it; see docs/ARCHITECTURE.md "Live cluster
// observability".
//
//   byzcastd --config cluster.json --group 2 --replica 1 --out-dir run/
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>

#include "net/cluster.hpp"
#include "net/dump.hpp"

namespace {

using namespace byzcast;

volatile std::sig_atomic_t g_stop = 0;
volatile std::sig_atomic_t g_dump = 0;

void handle_signal(int) { g_stop = 1; }
void handle_dump_signal(int) { g_dump = 1; }

struct Args {
  std::string config;
  std::string out_dir = ".";
  int group = -1;
  int replica = -1;
};

std::optional<Args> parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "byzcastd: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "--config") {
      const char* v = need_value("--config");
      if (!v) return std::nullopt;
      args.config = v;
    } else if (a == "--group") {
      const char* v = need_value("--group");
      if (!v) return std::nullopt;
      args.group = std::atoi(v);
    } else if (a == "--replica") {
      const char* v = need_value("--replica");
      if (!v) return std::nullopt;
      args.replica = std::atoi(v);
    } else if (a == "--out-dir") {
      const char* v = need_value("--out-dir");
      if (!v) return std::nullopt;
      args.out_dir = v;
    } else {
      std::fprintf(stderr, "byzcastd: unknown argument %s\n", a.c_str());
      return std::nullopt;
    }
  }
  if (args.config.empty() || args.group < 0 || args.replica < 0) {
    std::fprintf(stderr,
                 "usage: byzcastd --config FILE --group N --replica N "
                 "[--out-dir DIR]\n");
    return std::nullopt;
  }
  return args;
}

void write_artifacts(const Args& args, net::ClusterNode& node) {
  node.refresh_net_metrics();  // registry JSON then carries the net.* gauges
  const std::string name = node.node_name();
  net::DeliveryDump dump;
  dump.node = name;
  dump.monitor_violations = node.monitors().total_violations();
  dump.records = node.delivery_log().records();
  std::string error;
  if (!net::write_json_file(args.out_dir + "/delivery_" + name + ".json",
                            net::delivery_dump_to_json(dump), &error)) {
    std::fprintf(stderr, "byzcastd[%s]: %s\n", name.c_str(), error.c_str());
  }

  // Metrics sidecar: the registry dumps itself as JSON; transport and env
  // counters are appended by hand around it.
  const auto tr = node.env().transport().stats();
  const auto& es = node.env().stats();
  std::ofstream out(args.out_dir + "/metrics_" + name + ".json",
                    std::ios::trunc);
  if (out) {
    out << "{\"node\":\"" << name << "\""
        << ",\"monitor_violations\":" << dump.monitor_violations
        << ",\"deliveries\":" << dump.records.size()
        << ",\"transport\":{"
        << "\"messages_sent\":" << tr.messages_sent
        << ",\"messages_received\":" << tr.messages_received
        << ",\"bytes_sent\":" << tr.bytes_sent
        << ",\"bytes_received\":" << tr.bytes_received
        << ",\"dropped_no_route\":" << tr.dropped_no_route
        << ",\"dropped_queue_full\":" << tr.dropped_queue_full
        << ",\"dropped_decode\":" << tr.dropped_decode
        << ",\"connect_attempts\":" << tr.connect_attempts
        << ",\"reconnects\":" << tr.reconnects
        << ",\"inbound_accepted\":" << tr.inbound_accepted
        << ",\"inbound_resets\":" << tr.inbound_resets
        << ",\"send_queue_high_water\":" << tr.send_queue_high_water << "}"
        << ",\"env\":{"
        << "\"local_deliveries\":" << es.local_deliveries
        << ",\"remote_sends\":" << es.remote_sends
        << ",\"ghost_send_drops\":" << es.ghost_send_drops
        << ",\"no_actor_drops\":" << es.no_actor_drops << "}"
        << ",\"registry\":" << node.metrics().to_json() << "}\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv);
  if (!args) return 2;

  std::string error;
  const auto cfg = net::ClusterConfig::load_file(args->config, &error);
  if (!cfg) {
    std::fprintf(stderr, "byzcastd: %s\n", error.c_str());
    return 2;
  }
  const GroupId group{args->group};
  if (cfg->group(group) == nullptr ||
      args->replica >= cfg->replicas_per_group()) {
    std::fprintf(stderr, "byzcastd: no seat group=%d replica=%d in %s\n",
                 args->group, args->replica, args->config.c_str());
    return 2;
  }

  net::ClusterNode node(*cfg, net::NodeIdentity{group, args->replica});
  if (!node.listen(&error)) {
    std::fprintf(stderr, "byzcastd[%s]: %s\n", node.node_name().c_str(),
                 error.c_str());
    return 1;
  }
  const net::Endpoint* self_ep = cfg->endpoint_of(node.self_pid());
  if (self_ep->introspect_port != 0 &&
      !node.start_introspect(self_ep->introspect_port, &error)) {
    std::fprintf(stderr, "byzcastd[%s]: %s\n", node.node_name().c_str(),
                 error.c_str());
    return 1;
  }
  node.connect(*cfg);

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  std::signal(SIGUSR1, handle_dump_signal);
  std::signal(SIGPIPE, SIG_IGN);

  // Graceful-shutdown poller: a self-rescheduling 50ms timer. Once the
  // signal flag is up it drains, writes artifacts and stops the loop. The
  // stability window must exceed the anti-entropy cadence (liveness checks
  // every leader_timeout/2 plus the 500ms state-transfer rate limit): a
  // straggler replica catches up on that cadence, and an impatient drain
  // would dump its log mid-recovery.
  struct Drain {
    Time started = -1;
    Time stable_since = -1;
    std::uint64_t last = 0;
  };
  auto drain = std::make_shared<Drain>();
  std::function<void()> poll = [&node, &args, drain, &poll] {
    constexpr Time kPoll = 50 * kMillisecond;
    constexpr Time kStable = 2500 * kMillisecond;
    constexpr Time kCap = 15 * kSecond;
    const Time now = node.env().now();
    if (g_stop == 0) {
      if (g_dump != 0) {
        // SIGUSR1: on-demand snapshot, keep running. Runs on the loop
        // thread, so the dump sees a consistent state between messages.
        g_dump = 0;
        write_artifacts(*args, node);
      }
      node.env().loop().schedule(kPoll, poll);
      return;
    }
    const std::uint64_t cur = node.delivery_log().total_deliveries();
    if (drain->started < 0) {
      drain->started = now;
      drain->stable_since = now;
      drain->last = cur;
    } else if (cur != drain->last) {
      drain->last = cur;
      drain->stable_since = now;
    }
    if (now - drain->stable_since >= kStable ||
        now - drain->started >= kCap) {
      write_artifacts(*args, node);
      node.env().transport().shutdown();
      node.env().loop().request_stop();
      return;
    }
    node.env().loop().schedule(kPoll, poll);
  };
  node.env().loop().schedule(50 * kMillisecond, poll);

  std::fprintf(stderr, "byzcastd[%s]: pid %d listening on %u (introspect %u)\n",
               node.node_name().c_str(), node.self_pid().value,
               node.listen_port(), node.introspect_port());
  node.run();  // blocks until the drain poller stops the loop
  return 0;
}
