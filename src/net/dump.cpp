#include "net/dump.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace byzcast::net {

namespace {

bool fail(std::string* error, const std::string& what) {
  if (error) *error = what;
  return false;
}

}  // namespace

Json delivery_dump_to_json(const DeliveryDump& dump) {
  Json j = Json::object();
  j.set("schema", Json::string(kDeliveryDumpSchema));
  j.set("node", Json::string(dump.node));
  j.set("monitor_violations",
        Json::number(static_cast<double>(dump.monitor_violations)));
  Json records = Json::array();
  for (const core::DeliveryRecord& r : dump.records) {
    Json rec = Json::object();
    rec.set("group", Json::number(r.group.value));
    rec.set("replica", Json::number(r.replica.value));
    rec.set("origin", Json::number(r.msg.origin.value));
    rec.set("seq", Json::number(static_cast<double>(r.msg.seq)));
    rec.set("when", Json::number(static_cast<double>(r.when)));
    records.push_back(std::move(rec));
  }
  j.set("records", std::move(records));
  return j;
}

Json sent_dump_to_json(const SentDump& dump) {
  Json j = Json::object();
  j.set("schema", Json::string(kSentDumpSchema));
  j.set("node", Json::string(dump.node));
  Json sent = Json::array();
  for (const core::SentMessage& s : dump.sent) {
    Json m = Json::object();
    m.set("origin", Json::number(s.id.origin.value));
    m.set("seq", Json::number(static_cast<double>(s.id.seq)));
    Json dst = Json::array();
    for (const GroupId g : s.dst) dst.push_back(Json::number(g.value));
    m.set("dst", std::move(dst));
    sent.push_back(std::move(m));
  }
  j.set("sent", std::move(sent));
  return j;
}

std::optional<DeliveryDump> delivery_dump_from_json(const Json& j,
                                                    std::string* error) {
  if (!j.is_object() || j.get("schema").as_string() != kDeliveryDumpSchema) {
    fail(error, "not a " + std::string(kDeliveryDumpSchema) + " file");
    return std::nullopt;
  }
  DeliveryDump dump;
  dump.node = j.get("node").as_string();
  dump.monitor_violations =
      static_cast<std::uint64_t>(j.int_or("monitor_violations", 0));
  const Json& records = j.get("records");
  if (!records.is_array()) {
    fail(error, "\"records\" must be an array");
    return std::nullopt;
  }
  for (std::size_t i = 0; i < records.size(); ++i) {
    const Json& r = records.at(i);
    if (!r.is_object() || !r.get("group").is_number() ||
        !r.get("replica").is_number() || !r.get("origin").is_number() ||
        !r.get("seq").is_number()) {
      fail(error, "record " + std::to_string(i) + " malformed");
      return std::nullopt;
    }
    core::DeliveryRecord rec;
    rec.group = GroupId(static_cast<std::int32_t>(r.get("group").as_int()));
    rec.replica =
        ProcessId(static_cast<std::int32_t>(r.get("replica").as_int()));
    rec.msg.origin =
        ProcessId(static_cast<std::int32_t>(r.get("origin").as_int()));
    rec.msg.seq = static_cast<std::uint64_t>(r.get("seq").as_int());
    rec.when = r.int_or("when", 0);
    dump.records.push_back(rec);
  }
  return dump;
}

std::optional<SentDump> sent_dump_from_json(const Json& j,
                                            std::string* error) {
  if (!j.is_object() || j.get("schema").as_string() != kSentDumpSchema) {
    fail(error, "not a " + std::string(kSentDumpSchema) + " file");
    return std::nullopt;
  }
  SentDump dump;
  dump.node = j.get("node").as_string();
  const Json& sent = j.get("sent");
  if (!sent.is_array()) {
    fail(error, "\"sent\" must be an array");
    return std::nullopt;
  }
  for (std::size_t i = 0; i < sent.size(); ++i) {
    const Json& m = sent.at(i);
    if (!m.is_object() || !m.get("origin").is_number() ||
        !m.get("seq").is_number() || !m.get("dst").is_array()) {
      fail(error, "sent entry " + std::to_string(i) + " malformed");
      return std::nullopt;
    }
    core::SentMessage s;
    s.id.origin =
        ProcessId(static_cast<std::int32_t>(m.get("origin").as_int()));
    s.id.seq = static_cast<std::uint64_t>(m.get("seq").as_int());
    const Json& dst = m.get("dst");
    for (std::size_t d = 0; d < dst.size(); ++d) {
      s.dst.push_back(
          GroupId(static_cast<std::int32_t>(dst.at(d).as_int())));
    }
    dump.sent.push_back(std::move(s));
  }
  return dump;
}

bool write_json_file(const std::string& path, const Json& j,
                     std::string* error) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return fail(error, "cannot write " + tmp);
    out << j.dump();
    if (!out.good()) return fail(error, "short write to " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) return fail(error, "rename " + tmp + ": " + ec.message());
  return true;
}

std::optional<Json> read_json_file(const std::string& path,
                                   std::string* error) {
  std::ifstream in(path);
  if (!in) {
    fail(error, "cannot open " + path);
    return std::nullopt;
  }
  std::ostringstream text;
  text << in.rdbuf();
  auto j = Json::parse(text.str(), error);
  if (!j && error) *error = path + ": " + *error;
  return j;
}

DumpCheckResult check_cluster_dumps(
    const ClusterConfig& cfg, const std::string& dir,
    const std::set<std::pair<std::int32_t, int>>& excluded) {
  DumpCheckResult result;
  core::DeliveryLog merged;
  std::vector<core::SentMessage> sent;

  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    result.error = "cannot list " + dir + ": " + ec.message();
    return result;
  }
  std::vector<std::filesystem::path> files;
  for (const auto& entry : it) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  // Deterministic merge order (per-replica order is all that matters, and
  // one replica's records live in one file, but stable output helps debug).
  std::sort(files.begin(), files.end());

  for (const auto& path : files) {
    const std::string stem = path.filename().string();
    std::string error;
    if (stem.rfind("delivery_", 0) == 0 && path.extension() == ".json") {
      const auto j = read_json_file(path.string(), &error);
      if (!j) {
        result.error = error;
        return result;
      }
      const auto dump = delivery_dump_from_json(*j, &error);
      if (!dump) {
        result.error = path.string() + ": " + error;
        return result;
      }
      ++result.delivery_files;
      result.monitor_violations += dump->monitor_violations;
      for (const auto& rec : dump->records) {
        merged.record(rec.group, rec.replica, rec.msg, rec.when);
      }
    } else if (stem.rfind("sent_", 0) == 0 && path.extension() == ".json") {
      const auto j = read_json_file(path.string(), &error);
      if (!j) {
        result.error = error;
        return result;
      }
      const auto dump = sent_dump_from_json(*j, &error);
      if (!dump) {
        result.error = path.string() + ": " + error;
        return result;
      }
      ++result.sent_files;
      sent.insert(sent.end(), dump->sent.begin(), dump->sent.end());
    }
  }
  result.deliveries = merged.records().size();
  result.sent_messages = sent.size();

  core::PropertyInput in;
  in.log = &merged;
  in.sent = std::move(sent);
  for (const GroupSpec& g : cfg.groups) {
    if (!g.is_target) continue;
    for (int i = 0; i < cfg.replicas_per_group(); ++i) {
      if (excluded.contains({g.id.value, i})) continue;
      in.correct_replicas[g.id].push_back(cfg.pid_of(g.id, i));
    }
  }
  const core::PropertyResult verdict = core::check_all_properties(in);
  result.ok = verdict.ok;
  if (!verdict.ok) result.error = verdict.error;
  if (result.ok && result.monitor_violations > 0) {
    result.ok = false;
    result.error = std::to_string(result.monitor_violations) +
                   " online monitor violation(s) reported by replicas";
  }
  return result;
}

}  // namespace byzcast::net
