// Cluster-wide observability collector: everything behind `byzcast-ctl`.
//
// A running net-backend cluster exposes per-process introspection servers
// (net/introspect.hpp). This module is the other half: a blocking HTTP GET
// client, the byzcast-raw-spans-v1 exchange format each daemon serves on
// /spans, per-daemon clock-offset estimation against /clock (timestamp
// echo, RTT-midpoint correction at the lowest observed RTT — the same
// estimator the transport applies per connection), and the merge step that
// shifts every process's spans onto the collector's timeline, rebuilds one
// SpanLog, runs core::CriticalPathAnalyzer over it and emits the merged
// byzcast-spans-v1 sidecar plus a cluster-wide Perfetto (Chrome trace
// event) file.
//
// Clock model: every process's span timestamps are steady-clock ns since
// *its own* EventLoop was built, so raw timestamps from two processes are
// incomparable. For daemon i the collector estimates offset_i such that
//   collector_time ≈ node_time - offset_i
// and aligns span [begin, end) to [begin - offset_i, end - offset_i). On a
// LAN the min-RTT midpoint bounds the estimation error by rtt/2 (tens of
// microseconds on localhost) — far below the millisecond-scale intervals
// the critical-path decomposition reports, and irrelevant to its exact
// telescoping, which is computed per clamped chain after alignment.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/span.hpp"
#include "net/config.hpp"
#include "net/json.hpp"

namespace byzcast::net {

inline constexpr const char* kRawSpansSchema = "byzcast-raw-spans-v1";
inline constexpr const char* kMergedSpansSchema = "byzcast-spans-v1";

// --- raw span exchange format (served by /spans) --------------------------

struct RawSpans {
  std::string node;
  Time now_ns = 0;          // serving process's clock at render time
  std::uint64_t recorded = 0;
  std::uint64_t dropped = 0;
  std::size_t from = 0;     // cursor this render started at
  std::vector<Span> spans;
};

/// Renders `log` (from index `from` on) in the raw exchange format.
[[nodiscard]] Json raw_spans_json(const SpanLog& log, const std::string& node,
                                  Time now_ns, std::size_t from = 0);
[[nodiscard]] std::optional<RawSpans> raw_spans_from_json(const Json& j,
                                                          std::string* error);

// --- collector-side HTTP ---------------------------------------------------

/// Blocking HTTP/1.0 GET; returns the response body on a 200, nullopt (with
/// prose) on connect/timeout/HTTP failure. Safe from any thread.
[[nodiscard]] std::optional<std::string> http_get(const std::string& host,
                                                  std::uint16_t port,
                                                  const std::string& target,
                                                  int timeout_ms,
                                                  std::string* error);

// --- clock alignment -------------------------------------------------------

/// Collector-process clock: steady ns since first call.
[[nodiscard]] Time collector_now();

struct ClockEstimate {
  Time offset = 0;    // node_time - offset ≈ collector_time
  Time min_rtt = -1;
  int samples = 0;
};

/// `samples` round trips against GET /clock?t0=...; keeps the lowest-RTT
/// midpoint estimate.
[[nodiscard]] std::optional<ClockEstimate> estimate_clock_offset(
    const std::string& host, std::uint16_t port, int samples, int timeout_ms,
    std::string* error);

// --- scrape & merge --------------------------------------------------------

struct ScrapeTarget {
  std::string name;  // "g0_r1" / "client"
  std::string host;
  std::uint16_t port = 0;  // introspection port
};

/// Every process of `cfg` with a nonzero introspection port (replica seats
/// in pid order, then the load generator as "client").
[[nodiscard]] std::vector<ScrapeTarget> introspect_targets(
    const ClusterConfig& cfg);

struct NodeCapture {
  ScrapeTarget target;
  bool ok = false;
  std::string error;
  ClockEstimate clock;
  RawSpans raw;
  Json healthz;  // null when /healthz failed
};

struct MergeResult {
  bool ok = false;
  std::string error;
  std::vector<NodeCapture> nodes;
  std::size_t scraped_ok = 0;
  std::size_t merged_spans = 0;
  std::uint64_t spans_dropped = 0;        // summed over processes
  std::uint64_t monitor_violations = 0;   // summed from /healthz
  std::size_t traced_messages = 0;
  std::size_t complete_messages = 0;
};

/// Scrapes every target of `cfg` live (clock offsets, /spans, /healthz),
/// aligns all spans onto the collector timeline and writes
/// `<out_dir>/cluster_spans.json` (merged byzcast-spans-v1 sidecar with a
/// per-node "cluster" section) and `<out_dir>/cluster_trace.json` (Perfetto
/// / Chrome trace events). Requires at least one reachable target; spans
/// from unreachable ones are simply absent (reported per node).
[[nodiscard]] MergeResult collect_and_merge(const ClusterConfig& cfg,
                                            const std::string& out_dir,
                                            int clock_samples = 7,
                                            int timeout_ms = 2000);

}  // namespace byzcast::net
