#include "net/env.hpp"

#include <utility>

#include "sim/actor.hpp"

namespace byzcast::net {

NetEnv::NetEnv(NetEnvOptions opts)
    : opts_(opts),
      transport_(loop_, opts.transport),
      // Same derivation as RuntimeEnv: MACs signed here verify in any other
      // process loading the same seed.
      keys_(std::make_shared<KeyStore>(
          opts.seed ^ 0xb7e151628aed2a6aULL,
          opts.profile.fast_macs ? MacMode::kFast : MacMode::kHmac,
          /*verify_memo=*/!opts.profile.mac_memo_off)),
      master_rng_(opts.seed) {
  transport_.set_handler(
      [this](sim::WireMessage msg) { deliver_local(std::move(msg)); });
}

NetEnv::~NetEnv() { stop(); }

void NetEnv::set_local_pids(std::unordered_set<std::int32_t> pids,
                            std::int32_t dynamic_local_floor) {
  local_pids_ = std::move(pids);
  dynamic_local_floor_ = dynamic_local_floor;
}

bool NetEnv::is_local(ProcessId pid) const {
  if (!pid.valid()) return false;
  if (pid.value >= dynamic_local_floor_) {
    // Dynamic pids (clients) are local only when THIS process allocated
    // them; a replica daemon sees the load generator's client pids here and
    // must route replies back over the wire, not into a ghost.
    const std::lock_guard<std::mutex> lock(allocated_mu_);
    return allocated_here_.contains(pid.value);
  }
  return local_pids_.contains(pid.value);
}

void NetEnv::start() {
  if (started_.exchange(true)) return;
  loop_thread_ = std::thread([this] { loop_.run(); });
}

void NetEnv::run() {
  started_.store(true);
  loop_.run();
}

void NetEnv::stop() {
  loop_.request_stop();
  if (loop_thread_.joinable()) loop_thread_.join();
}

ProcessId NetEnv::allocate_pid() {
  const auto pid = next_pid_.fetch_add(1, std::memory_order_relaxed);
  if (pid >= dynamic_local_floor_) {
    const std::lock_guard<std::mutex> lock(allocated_mu_);
    allocated_here_.insert(pid);
  }
  return ProcessId(pid);
}

Rng NetEnv::fork_rng() {
  const std::lock_guard<std::mutex> lock(rng_mu_);
  return master_rng_.fork();
}

void NetEnv::attach(ProcessId id, sim::Actor* actor) {
  if (!is_local(id)) return;  // ghost: exists only to advance the pid clock
  actors_[id.value] = actor;
}

void NetEnv::detach(ProcessId id) { actors_.erase(id.value); }

void NetEnv::deliver_local(sim::WireMessage msg) {
  const auto it = actors_.find(msg.to.value);
  if (it == actors_.end()) {
    ++stats_.no_actor_drops;
    return;
  }
  ++stats_.local_deliveries;
  it->second->enqueue(std::move(msg));
}

void NetEnv::send_message(sim::WireMessage msg) {
  if (!is_local(msg.from)) {
    // A ghost's output does not exist; the process owning msg.from emits
    // the real copy.
    ++stats_.ghost_send_drops;
    return;
  }
  if (is_local(msg.to)) {
    // Local hop, no socket and no artificial delay: all replicas hosted by
    // one process belong to one group (one region), where the WAN model's
    // intra-region RTT is sub-millisecond anyway. Direct enqueue is safe —
    // actors defer actual processing through schedule(), so there is no
    // recursion into on_message from here.
    deliver_local(std::move(msg));
    return;
  }
  ++stats_.remote_sends;
  transport_.send(msg);
}

void NetEnv::schedule(ProcessId owner, Time delay,
                      std::function<void()> fn) {
  if (!is_local(owner)) return;  // ghost timers never fire
  if (loop_.running() && !loop_.in_loop_thread()) {
    // Arm from a foreign thread (e.g. the load driver) by bouncing through
    // the loop; the extra hop costs one wakeup.
    loop_.post([this, delay, fn = std::move(fn)]() mutable {
      loop_.schedule(delay, std::move(fn));
    });
    return;
  }
  loop_.schedule(delay < 0 ? 0 : delay, std::move(fn));
}

}  // namespace byzcast::net
