#include "net/transport.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "common/contracts.hpp"

namespace byzcast::net {

namespace {

int make_tcp_socket() {
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

/// Cadence of the per-connection clock-sync pings. Each exchange costs two
/// ~20-byte frames; the offset estimate keeps improving as lower-RTT samples
/// arrive, so a sub-second cadence converges quickly without load.
constexpr Time kClockPingInterval = 500 * kMillisecond;

bool resolve_ipv4(const std::string& host, std::uint16_t port,
                  sockaddr_in* out) {
  ::memset(out, 0, sizeof *out);
  out->sin_family = AF_INET;
  out->sin_port = htons(port);
  if (host.empty() || host == "localhost") {
    out->sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    return true;
  }
  if (host == "0.0.0.0") {
    out->sin_addr.s_addr = htonl(INADDR_ANY);
    return true;
  }
  return ::inet_pton(AF_INET, host.c_str(), &out->sin_addr) == 1;
}

}  // namespace

Transport::Transport(EventLoop& loop, TransportOptions opts)
    : loop_(loop), opts_(opts) {}

Transport::~Transport() {
  if (!shutdown_) shutdown();
}

bool Transport::listen(const std::string& host, std::uint16_t port,
                       std::string* error) {
  sockaddr_in addr{};
  if (!resolve_ipv4(host, port, &addr)) {
    if (error) *error = "unresolvable listen host: " + host;
    return false;
  }
  const int fd = make_tcp_socket();
  if (fd < 0) {
    if (error) *error = "socket: " + std::string(::strerror(errno));
    return false;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, SOMAXCONN) != 0) {
    if (error) {
      *error = "bind/listen " + host + ":" + std::to_string(port) + ": " +
               ::strerror(errno);
    }
    ::close(fd);
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  BZC_ENSURES(::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) ==
              0);
  listen_fd_ = fd;
  listen_port_ = ntohs(bound.sin_port);
  loop_.add_fd(listen_fd_, EPOLLIN,
               [this](std::uint32_t) { handle_accept(); });
  return true;
}

void Transport::add_peer(const std::string& host, std::uint16_t port,
                         std::vector<ProcessId> pids) {
  const std::size_t index = peers_.size();
  Peer p;
  p.host = host;
  p.port = port;
  p.pids = pids;
  peers_.push_back(std::move(p));
  for (const ProcessId pid : pids) pid_peer_[pid] = index;
}

void Transport::connect_all() {
  for (std::size_t i = 0; i < peers_.size(); ++i) dial(i);
  start_clock_sync();
}

void Transport::ping_clock(Connection& conn) {
  if (conn.send_frame({encode_clock_ping_frame(loop_.now())})) {
    ++stats_.clock_pings_sent;
  }
}

void Transport::start_clock_sync() {
  if (clock_sync_started_ || shutdown_) return;
  clock_sync_started_ = true;
  loop_.schedule(kClockPingInterval, [this] {
    if (shutdown_) return;
    for (Peer& peer : peers_) {
      if (peer.conn && peer.conn->established()) ping_clock(*peer.conn);
    }
    for (auto& conn : inbound_) {
      if (!conn->closed()) ping_clock(*conn);
    }
    clock_sync_started_ = false;
    start_clock_sync();
  });
}

void Transport::dial(std::size_t peer_index) {
  if (shutdown_) return;
  Peer& peer = peers_[peer_index];
  ++stats_.connect_attempts;
  if (peer.backoff > 0) ++stats_.reconnects;

  sockaddr_in addr{};
  const int fd = resolve_ipv4(peer.host, peer.port, &addr)
                     ? make_tcp_socket()
                     : -1;
  if (fd >= 0 &&
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 &&
      errno != EINPROGRESS) {
    ::close(fd);
    schedule_redial(peer_index);
    return;
  }
  if (fd < 0) {
    schedule_redial(peer_index);
    return;
  }

  auto conn = std::make_unique<Connection>(loop_, fd, /*connecting=*/true,
                                           opts_.max_frame_bytes,
                                           opts_.send_queue_max_bytes);
  conn->set_established_handler([this, peer_index](Connection& c) {
    peers_[peer_index].backoff = 0;
    peers_[peer_index].ever_connected = true;
    if (!local_pids_.empty()) {
      c.send_frame({encode_hello_frame(local_pids_)});
    }
    ping_clock(c);  // first offset sample as soon as the link is up
  });
  conn->set_frame_handler([this](Connection& c, DecodedFrame f) {
    on_frame(c, std::move(f));
  });
  conn->set_close_handler([this, peer_index](Connection& c) {
    forget_learned(&c);
    clock_.erase(&c);
    retired_ = accumulate(retired_, c.stats());
    schedule_redial(peer_index);
  });
  peer.conn = std::move(conn);
  peer.conn->start();
}

void Transport::schedule_redial(std::size_t peer_index) {
  if (shutdown_) return;
  Peer& peer = peers_[peer_index];
  const Time min = opts_.reconnect_backoff_min;
  const Time max = opts_.reconnect_backoff_max;
  peer.backoff = peer.backoff == 0 ? min : std::min(peer.backoff * 2, max);
  // The old Connection object (if any) is destroyed here, on the timer —
  // never synchronously inside its own close handler.
  loop_.schedule(peer.backoff, [this, peer_index] {
    if (shutdown_) return;
    peers_[peer_index].conn.reset();
    dial(peer_index);
  });
}

void Transport::handle_accept() {
  while (true) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure; the listener stays up
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    ++stats_.inbound_accepted;
    auto conn = std::make_unique<Connection>(loop_, fd, /*connecting=*/false,
                                             opts_.max_frame_bytes,
                                             opts_.send_queue_max_bytes);
    Connection* raw = conn.get();
    conn->set_frame_handler([this](Connection& c, DecodedFrame f) {
      on_frame(c, std::move(f));
    });
    conn->set_close_handler([this](Connection& c) {
      if (c.decode_error() != FrameDecoder::Error::kNone) {
        ++stats_.inbound_resets;
      }
      forget_learned(&c);
      clock_.erase(&c);
      retired_ = accumulate(retired_, c.stats());
      // Destruction is deferred to a posted task: this handler runs inside
      // the connection's own event dispatch.
      loop_.post([this] { reap_inbound(); });
    });
    inbound_.push_back(std::move(conn));
    raw->start();
    ping_clock(*raw);
  }
}

void Transport::reap_inbound() {
  inbound_.erase(std::remove_if(inbound_.begin(), inbound_.end(),
                                [](const std::unique_ptr<Connection>& c) {
                                  return c->closed();
                                }),
                 inbound_.end());
}

void Transport::forget_learned(Connection* conn) {
  for (auto it = learned_.begin(); it != learned_.end();) {
    if (it->second == conn) {
      it = learned_.erase(it);
    } else {
      ++it;
    }
  }
}

void Transport::on_frame(Connection& conn, DecodedFrame frame) {
  switch (frame.type) {
    case FrameType::kHello: {
      const auto pids = decode_hello_body(BytesView(frame.body));
      if (!pids) {
        ++stats_.dropped_decode;
        conn.close();
        return;
      }
      for (const ProcessId pid : *pids) {
        // Static routes win: a HELLO cannot hijack a configured replica pid.
        if (pid_peer_.find(pid) == pid_peer_.end()) learned_[pid] = &conn;
      }
      return;
    }
    case FrameType::kWireMessage: {
      auto msg = decode_wire_body(BytesView(frame.body), frame.flags);
      if (!msg) {
        ++stats_.dropped_decode;
        return;
      }
      if (msg->sent_at >= 0) {
        // The wire carried the sender-clock send timestamp; translate it
        // into our clock domain via this link's offset estimate. Without a
        // completed ping/pong exchange the domains are incomparable — leave
        // the stamp unset rather than produce a garbage transit span.
        const auto it = clock_.find(&conn);
        if (it != clock_.end() && it->second.samples > 0) {
          const Time local = msg->sent_at - it->second.offset;
          msg->sent_at = local >= 0 ? local : -1;
        } else {
          msg->sent_at = -1;
        }
      }
      ++stats_.messages_received;
      if (handler_) handler_(std::move(*msg));
      return;
    }
    case FrameType::kClockPing: {
      const auto ping = decode_clock_ping_body(BytesView(frame.body));
      if (!ping) {
        ++stats_.dropped_decode;
        return;
      }
      conn.send_frame({encode_clock_pong_frame(ping->t0, loop_.now())});
      return;
    }
    case FrameType::kClockPong: {
      const auto pong = decode_clock_pong_body(BytesView(frame.body));
      if (!pong) {
        ++stats_.dropped_decode;
        return;
      }
      const Time t3 = loop_.now();
      if (pong->t0 < 0 || pong->t0 > t3) return;  // stale or forged echo
      ++stats_.clock_pongs_received;
      const Time rtt = t3 - pong->t0;
      ClockSync& sync = clock_[&conn];
      if (sync.samples == 0 || rtt <= sync.min_rtt) {
        // RTT-midpoint correction at the lowest RTT observed: the tighter
        // the exchange, the tighter the bound on the true offset.
        sync.min_rtt = rtt;
        sync.offset = pong->t_peer - (pong->t0 + t3) / 2;
      }
      ++sync.samples;
      return;
    }
  }
}

Connection* Transport::route(ProcessId to) {
  const auto peer_it = pid_peer_.find(to);
  if (peer_it != pid_peer_.end()) {
    Connection* conn = peers_[peer_it->second].conn.get();
    return (conn != nullptr && !conn->closed()) ? conn : nullptr;
  }
  const auto learned_it = learned_.find(to);
  if (learned_it != learned_.end() && !learned_it->second->closed()) {
    return learned_it->second;
  }
  return nullptr;
}

void Transport::send(const sim::WireMessage& msg) {
  if (shutdown_) return;
  const Time delay = delay_fn_ ? delay_fn_(msg.to) : 0;
  if (delay > 0) {
    // Buffer payload is ref-counted: the captured copy shares bytes.
    loop_.schedule(delay, [this, msg] {
      if (!shutdown_) send_now(msg);
    });
    return;
  }
  send_now(msg);
}

void Transport::send_now(const sim::WireMessage& msg) {
  Connection* conn = route(msg.to);
  if (conn == nullptr) {
    ++stats_.dropped_no_route;
    return;
  }
  if (conn->send_frame(encode_wire_frame(msg))) {
    ++stats_.messages_sent;
  } else {
    ++stats_.dropped_queue_full;
  }
}

void Transport::shutdown() {
  shutdown_ = true;
  if (listen_fd_ >= 0) {
    loop_.del_fd(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  learned_.clear();
  clock_.clear();
  for (Peer& peer : peers_) {
    if (peer.conn) {
      retired_ = accumulate(retired_, peer.conn->stats());
      peer.conn->close();  // close handler no-ops under shutdown_
      peer.conn.reset();
    }
  }
  for (auto& conn : inbound_) {
    if (!conn->closed()) {
      retired_ = accumulate(retired_, conn->stats());
      conn->close();
    }
  }
  inbound_.clear();
}

Connection::Stats Transport::accumulate(Connection::Stats total,
                                        const Connection::Stats& s) {
  total.bytes_in += s.bytes_in;
  total.bytes_out += s.bytes_out;
  total.frames_in += s.frames_in;
  total.frames_out += s.frames_out;
  total.frames_dropped += s.frames_dropped;
  total.send_queue_high_water =
      std::max(total.send_queue_high_water, s.send_queue_high_water);
  return total;
}

Transport::Stats Transport::stats() const {
  Stats out = stats_;
  Connection::Stats conn_total = retired_;
  for (const Peer& peer : peers_) {
    if (peer.conn) conn_total = accumulate(conn_total, peer.conn->stats());
  }
  for (const auto& conn : inbound_) {
    conn_total = accumulate(conn_total, conn->stats());
  }
  out.bytes_sent = conn_total.bytes_out;
  out.bytes_received = conn_total.bytes_in;
  out.send_queue_high_water = conn_total.send_queue_high_water;
  return out;
}

std::vector<Transport::LinkClock> Transport::link_clocks() const {
  std::vector<LinkClock> out;
  out.reserve(clock_.size());
  const auto sync_of = [this](const Connection* conn) -> const ClockSync* {
    const auto it = clock_.find(conn);
    return it == clock_.end() ? nullptr : &it->second;
  };
  for (const Peer& peer : peers_) {
    const ClockSync* sync = sync_of(peer.conn.get());
    if (sync == nullptr) continue;
    LinkClock lc;
    if (!peer.pids.empty()) lc.pid = peer.pids.front();
    lc.outbound = true;
    lc.offset = sync->offset;
    lc.min_rtt = sync->min_rtt;
    lc.samples = sync->samples;
    out.push_back(lc);
  }
  for (const auto& conn : inbound_) {
    const ClockSync* sync = sync_of(conn.get());
    if (sync == nullptr) continue;
    LinkClock lc;
    for (const auto& [pid, learned_conn] : learned_) {
      if (learned_conn == conn.get() &&
          (!lc.pid.valid() || pid.value < lc.pid.value)) {
        lc.pid = pid;
      }
    }
    lc.offset = sync->offset;
    lc.min_rtt = sync->min_rtt;
    lc.samples = sync->samples;
    out.push_back(lc);
  }
  return out;
}

bool Transport::all_peers_connected() const {
  for (const Peer& peer : peers_) {
    if (!peer.conn || !peer.conn->established()) return false;
  }
  return true;
}

}  // namespace byzcast::net
