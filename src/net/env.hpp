// NetEnv: the third ExecutionEnv backend — real TCP sockets between OS
// processes. One NetEnv hosts the slice of the system that lives in this
// process; everything else is reachable only through the Transport.
//
// The ghost-actor composition trick: every process constructs the FULL
// ByzCastSystem (all groups, all replicas) against its NetEnv, because pid
// assignment is positional — allocate_pid() hands out 0,1,2,... in
// construction order, and construction order is a pure function of the
// (shared) cluster config. The NetEnv then keeps only the local pids live:
//
//   * attach() registers an actor for delivery only when its pid is local;
//   * send_message() drops sends whose `from` is not local (a ghost's output
//     never exists — the real owner of that pid, in another process, emits
//     the real copy);
//   * schedule() drops callbacks whose owner is not local (a ghost's timers
//     never fire).
//
// Ghost actors are therefore inert objects that exist purely to advance the
// pid counter and populate the shared GroupInfo wiring. Replica::start only
// arms env-routed timers, so constructing a ghost has no side effects.
//
// Locality rule: a pid below the config's replica_count() is local iff it is
// in the declared local set; a pid at or above `dynamic_local_floor` is
// local iff THIS process allocated it at runtime (its own clients). Remote
// client pids reach the process only as reply targets and route back over
// the connection whose HELLO announced them.
//
// Cross-process consistency: the KeyStore seed formula and MAC mode match
// RuntimeEnv exactly, so MACs signed in one process verify in another.
//
// Determinism is NOT preserved (same caveat as RuntimeEnv): the property
// checkers, not golden traces, are the oracle.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "common/auth.hpp"
#include "common/rng.hpp"
#include "common/trace.hpp"
#include "net/event_loop.hpp"
#include "net/transport.hpp"
#include "sim/env.hpp"
#include "sim/profile.hpp"

namespace byzcast::net {

struct NetEnvOptions {
  std::uint64_t seed = 42;
  sim::Profile profile = sim::Profile::wallclock();
  TransportOptions transport;
};

class NetEnv final : public sim::ExecutionEnv {
 public:
  struct Stats {
    std::uint64_t local_deliveries = 0;
    std::uint64_t remote_sends = 0;
    std::uint64_t ghost_send_drops = 0;   // sends from non-local pids
    std::uint64_t no_actor_drops = 0;     // local pid with no live actor
  };

  explicit NetEnv(NetEnvOptions opts);
  ~NetEnv() override;

  // --- wiring (before start()/run()) -------------------------------------

  [[nodiscard]] EventLoop& loop() { return loop_; }
  [[nodiscard]] Transport& transport() { return transport_; }

  /// Declares which replica pids this process hosts and the first pid value
  /// that counts as a locally created client. Call before constructing the
  /// system.
  void set_local_pids(std::unordered_set<std::int32_t> pids,
                      std::int32_t dynamic_local_floor);
  [[nodiscard]] bool is_local(ProcessId pid) const;

  // --- lifecycle ----------------------------------------------------------

  /// Spawns a background thread running the loop (tests, load generator).
  void start();
  /// Runs the loop on the calling thread until request_stop (daemon main).
  void run();
  /// Stops the loop (joins the background thread when start() was used).
  /// Idempotent; safe from any thread.
  void stop();

  /// Enqueues `fn` onto the loop thread; safe from any thread. The edge
  /// through which non-loop threads (main, load driver) talk to actors.
  void post(std::function<void()> fn) { loop_.post(std::move(fn)); }

  [[nodiscard]] const Stats& stats() const { return stats_; }

  // --- ExecutionEnv -------------------------------------------------------

  [[nodiscard]] Time now() const override { return loop_.now(); }
  [[nodiscard]] const sim::Profile& profile() const override {
    return opts_.profile;
  }
  [[nodiscard]] std::shared_ptr<const KeyStore> keys() const override {
    return keys_;
  }
  void attach_observability(Observability obs) override { obs_ = obs; }
  [[nodiscard]] MetricsRegistry* metrics() const override {
    return obs_.metrics;
  }
  [[nodiscard]] TraceLog* trace() const override { return obs_.trace; }
  [[nodiscard]] SpanLog* spans() const override { return obs_.spans; }
  [[nodiscard]] ProcessId allocate_pid() override;
  [[nodiscard]] Rng fork_rng() override;
  void attach(ProcessId id, sim::Actor* actor) override;
  void detach(ProcessId id) override;
  void send_message(sim::WireMessage msg) override;
  void schedule(ProcessId owner, Time delay,
                std::function<void()> fn) override;

 private:
  void deliver_local(sim::WireMessage msg);

  NetEnvOptions opts_;
  EventLoop loop_;
  Transport transport_;
  std::shared_ptr<const KeyStore> keys_;

  std::unordered_set<std::int32_t> local_pids_;
  std::int32_t dynamic_local_floor_ = 0;
  /// Dynamic pids handed out by this process's allocate_pid (locally
  /// created clients). Guarded: allocation may race the loop thread.
  mutable std::mutex allocated_mu_;
  std::unordered_set<std::int32_t> allocated_here_;

  /// Loop-thread-only after start (wiring happens before).
  std::unordered_map<std::int32_t, sim::Actor*> actors_;
  Stats stats_;

  std::atomic<std::int32_t> next_pid_{0};
  std::mutex rng_mu_;
  Rng master_rng_;
  Observability obs_;

  std::thread loop_thread_;
  std::atomic<bool> started_{false};
};

}  // namespace byzcast::net
