#include "net/connection.hpp"

#include <errno.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <utility>

namespace byzcast::net {

namespace {
constexpr std::size_t kReadChunk = 64 * 1024;
constexpr int kMaxIov = 16;
}  // namespace

Connection::Connection(EventLoop& loop, int fd, bool connecting,
                       std::size_t max_frame_bytes,
                       std::size_t send_queue_max_bytes)
    : loop_(loop),
      fd_(fd),
      established_(!connecting),
      send_queue_max_(send_queue_max_bytes),
      decoder_(max_frame_bytes) {}

Connection::~Connection() {
  if (fd_ >= 0) {
    loop_.del_fd(fd_);
    ::close(fd_);
    fd_ = -1;
  }
}

void Connection::start() {
  // A connecting socket signals completion via EPOLLOUT.
  want_write_ = !established_;
  loop_.add_fd(fd_, EPOLLIN | (want_write_ ? EPOLLOUT : 0u),
               [this](std::uint32_t events) { handle_events(events); });
}

void Connection::handle_events(std::uint32_t events) {
  if (fd_ < 0) return;
  if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
    close();
    return;
  }
  if ((events & EPOLLOUT) != 0) {
    if (!established_) {
      int err = 0;
      socklen_t len = sizeof err;
      if (::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
          err != 0) {
        close();
        return;
      }
      established_ = true;
      if (on_established_) on_established_(*this);
      if (fd_ < 0) return;  // handler closed us
    }
    if (!flush_writes()) return;
    update_write_interest();
  }
  if ((events & EPOLLIN) != 0) handle_readable();
}

void Connection::handle_readable() {
  std::uint8_t buf[kReadChunk];
  while (fd_ >= 0) {
    const ssize_t n = ::read(fd_, buf, sizeof buf);
    if (n > 0) {
      stats_.bytes_in += static_cast<std::uint64_t>(n);
      decoder_.feed(buf, static_cast<std::size_t>(n));
      while (auto frame = decoder_.next()) {
        ++stats_.frames_in;
        if (on_frame_) on_frame_(*this, std::move(*frame));
        if (fd_ < 0) return;  // handler closed us
      }
      if (decoder_.error() != FrameDecoder::Error::kNone) {
        // Desynchronized or hostile stream: reset the connection.
        close();
        return;
      }
      if (static_cast<std::size_t>(n) < sizeof buf) return;
      continue;  // more may be buffered
    }
    if (n == 0) {  // EOF
      close();
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    close();
    return;
  }
}

bool Connection::send_frame(std::vector<Buffer> chunks) {
  if (fd_ < 0) return false;
  std::size_t frame_bytes = 0;
  for (const Buffer& b : chunks) frame_bytes += b.size();
  if (stats_.send_queue_bytes + frame_bytes > send_queue_max_) {
    ++stats_.frames_dropped;
    return false;
  }
  for (Buffer& b : chunks) {
    if (b.empty()) continue;
    send_queue_.push_back(Chunk{std::move(b), 0});
  }
  stats_.send_queue_bytes += frame_bytes;
  if (stats_.send_queue_bytes > stats_.send_queue_high_water) {
    stats_.send_queue_high_water = stats_.send_queue_bytes;
  }
  ++stats_.frames_out;
  if (established_) {
    if (!flush_writes()) return false;
    update_write_interest();
  }
  return true;
}

bool Connection::flush_writes() {
  while (!send_queue_.empty() && fd_ >= 0) {
    struct iovec iov[kMaxIov];
    int iovcnt = 0;
    for (const Chunk& c : send_queue_) {
      if (iovcnt == kMaxIov) break;
      iov[iovcnt].iov_base =
          const_cast<std::uint8_t*>(c.buf.data() + c.offset);
      iov[iovcnt].iov_len = c.buf.size() - c.offset;
      ++iovcnt;
    }
    const ssize_t n = ::writev(fd_, iov, iovcnt);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      close();
      return false;
    }
    stats_.bytes_out += static_cast<std::uint64_t>(n);
    stats_.send_queue_bytes -= static_cast<std::size_t>(n);
    std::size_t remaining = static_cast<std::size_t>(n);
    while (remaining > 0) {
      Chunk& front = send_queue_.front();
      const std::size_t left = front.buf.size() - front.offset;
      if (remaining >= left) {
        remaining -= left;
        send_queue_.pop_front();
      } else {
        front.offset += remaining;
        remaining = 0;
      }
    }
  }
  return true;
}

void Connection::update_write_interest() {
  if (fd_ < 0) return;
  const bool want = !send_queue_.empty() || !established_;
  if (want == want_write_) return;
  want_write_ = want;
  loop_.mod_fd(fd_, EPOLLIN | (want ? EPOLLOUT : 0u));
}

void Connection::close() {
  if (fd_ < 0) return;
  loop_.del_fd(fd_);
  ::close(fd_);
  fd_ = -1;
  stats_.send_queue_bytes = 0;
  send_queue_.clear();
  if (on_close_) {
    // Fire once; the handler typically destroys this object.
    const CloseHandler handler = std::move(on_close_);
    on_close_ = nullptr;
    handler(*this);
  }
}

}  // namespace byzcast::net
