#include "net/introspect.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/contracts.hpp"

namespace byzcast::net {

namespace {

constexpr std::size_t kMaxRequestBytes = 8 * 1024;

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    default: return "Error";
  }
}

}  // namespace

struct IntrospectServer::Client {
  int fd = -1;
  std::string in;
  std::string out;
  std::size_t out_pos = 0;
  bool responded = false;
};

IntrospectServer::IntrospectServer(EventLoop& loop) : loop_(loop) {}

IntrospectServer::~IntrospectServer() { shutdown(); }

void IntrospectServer::handle(std::string path, Handler h) {
  handlers_[std::move(path)] = std::move(h);
}

bool IntrospectServer::listen(const std::string& host, std::uint16_t port,
                              std::string* error) {
  sockaddr_in addr{};
  ::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (host.empty() || host == "localhost") {
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  } else if (host == "0.0.0.0") {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error) *error = "unresolvable introspect host: " + host;
    return false;
  }
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    if (error) *error = "socket: " + std::string(::strerror(errno));
    return false;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, SOMAXCONN) != 0) {
    if (error) {
      *error = "introspect bind/listen " + host + ":" + std::to_string(port) +
               ": " + ::strerror(errno);
    }
    ::close(fd);
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  BZC_ENSURES(::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) ==
              0);
  listen_fd_ = fd;
  port_ = ntohs(bound.sin_port);
  loop_.add_fd(listen_fd_, EPOLLIN,
               [this](std::uint32_t) { handle_accept(); });
  return true;
}

void IntrospectServer::shutdown() {
  if (listen_fd_ >= 0) {
    loop_.del_fd(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  while (!clients_.empty()) close_client(clients_.begin()->first);
}

void IntrospectServer::handle_accept() {
  while (true) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or a transient failure; the listener stays up
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    auto client = std::make_unique<Client>();
    client->fd = fd;
    Client* raw = client.get();
    clients_[raw] = std::move(client);
    loop_.add_fd(fd, EPOLLIN, [this, raw](std::uint32_t events) {
      on_client_event(raw, events);
    });
  }
}

void IntrospectServer::on_client_event(Client* client, std::uint32_t events) {
  if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
    close_client(client);
    return;
  }
  if ((events & EPOLLIN) != 0 && !client->responded) {
    char buf[4096];
    while (true) {
      const ssize_t n = ::read(client->fd, buf, sizeof buf);
      if (n > 0) {
        client->in.append(buf, static_cast<std::size_t>(n));
        if (client->in.size() > kMaxRequestBytes) {
          ++stats_.bad_requests;
          close_client(client);
          return;
        }
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      close_client(client);  // EOF before a complete request, or error
      return;
    }
    if (!maybe_respond(client)) return;  // incomplete request: keep reading
    // flush() inside maybe_respond may have finished and freed the client;
    // only a still-live one needs writability to drain the rest.
    if (clients_.contains(client)) loop_.mod_fd(client->fd, EPOLLOUT);
    return;
  }
  if ((events & EPOLLOUT) != 0 && client->responded) flush(client);
}

bool IntrospectServer::maybe_respond(Client* client) {
  const std::size_t header_end = client->in.find("\r\n\r\n");
  if (header_end == std::string::npos) return false;
  ++stats_.requests;

  // "GET /path?query HTTP/1.x"
  const std::size_t line_end = client->in.find("\r\n");
  const std::string line = client->in.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = line.rfind(' ');
  Response response;
  if (sp1 == std::string::npos || sp2 == sp1 ||
      line.substr(0, sp1) != "GET") {
    ++stats_.bad_requests;
    response.status = 400;
    response.body = "only GET is supported\n";
  } else {
    std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    std::string query;
    if (const std::size_t q = target.find('?'); q != std::string::npos) {
      query = target.substr(q + 1);
      target.resize(q);
    }
    const auto it = handlers_.find(target);
    if (it == handlers_.end()) {
      ++stats_.bad_requests;
      response.status = 404;
      response.body = "unknown path: " + target + "\n";
    } else {
      response = it->second(query);
    }
  }

  std::string head = "HTTP/1.0 " + std::to_string(response.status) + " " +
                     status_text(response.status) + "\r\n";
  head += "Content-Type: " + response.content_type + "\r\n";
  head += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  head += "Connection: close\r\n\r\n";
  client->out = std::move(head);
  client->out += response.body;
  client->responded = true;
  flush(client);
  return true;
}

void IntrospectServer::flush(Client* client) {
  while (client->out_pos < client->out.size()) {
    const ssize_t n =
        ::write(client->fd, client->out.data() + client->out_pos,
                client->out.size() - client->out_pos);
    if (n > 0) {
      client->out_pos += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    close_client(client);
    return;
  }
  close_client(client);  // response fully written: HTTP/1.0, one shot
}

void IntrospectServer::close_client(Client* client) {
  const auto it = clients_.find(client);
  if (it == clients_.end()) return;
  loop_.del_fd(client->fd);
  ::close(client->fd);
  clients_.erase(it);
}

std::map<std::string, std::string> parse_query(const std::string& query) {
  std::map<std::string, std::string> out;
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::string pair = query.substr(pos, amp - pos);
    if (const std::size_t eq = pair.find('='); eq != std::string::npos) {
      out[pair.substr(0, eq)] = pair.substr(eq + 1);
    } else if (!pair.empty()) {
      out[pair] = "";
    }
    pos = amp + 1;
  }
  return out;
}

}  // namespace byzcast::net
