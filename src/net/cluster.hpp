// Cluster composition for the net backend.
//
// ClusterNode wires one OS process's slice of a ByzCast deployment: a NetEnv
// (ghost-actor composition — see env.hpp), the full ByzCastSystem built
// against it, and the transport wiring derived from a ClusterConfig. A node
// is either a replica daemon (identity = one (group, replica) seat; hosts
// exactly that pid, listens on its configured endpoint) or a client-only
// process (the load generator: hosts no replica, only locally created
// clients, needs no listener — replies arrive over the connections it
// dials).
//
// InProcessCluster runs a whole cluster inside one process for tests and
// benchmarks — N ClusterNodes, each with its own event-loop thread, talking
// over real localhost TCP. Ephemeral ports: every replica listens on port 0
// first, the actual ports are collected into a resolved config, and only
// then does anyone dial. It is the same code path as the multi-process
// deployment minus fork/exec.
#pragma once

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.hpp"
#include "common/monitor.hpp"
#include "common/span.hpp"
#include "core/client.hpp"
#include "core/properties.hpp"
#include "core/system.hpp"
#include "net/config.hpp"
#include "net/env.hpp"
#include "net/introspect.hpp"

namespace byzcast::net {

struct NodeIdentity {
  GroupId group;
  int replica = 0;
};

class ClusterNode {
 public:
  /// `self` = the replica seat this process owns; nullopt = client-only.
  /// Builds the full system (ghosts included) but does not touch the
  /// network yet.
  ClusterNode(ClusterConfig cfg, std::optional<NodeIdentity> self);
  ~ClusterNode();

  /// Replica daemons: bind the configured endpoint (or an ephemeral port
  /// when `ephemeral`). Client-only nodes need no listener.
  bool listen(std::string* error, bool ephemeral = false);
  [[nodiscard]] std::uint16_t listen_port() const {
    return env_->transport().listen_port();
  }

  /// Creates a local client. Before connect()/start() only (the client's
  /// pid must make it into the HELLO announcement).
  core::Client& add_client(const std::string& name);

  /// Dials every remote replica of `resolved` (the config with real ports)
  /// and installs the WAN delay model. Before start().
  void connect(const ClusterConfig& resolved);

  /// Starts the HTTP introspection server (net/introspect.hpp) on `port`
  /// (0 = ephemeral, see introspect_port()), serving the standard endpoint
  /// set: /metrics (Prometheus text), /healthz (liveness + consensus
  /// progress JSON), /spans (raw span drain for the collector, ?from=
  /// cursor), /dump (delivery dump on demand) and /clock (timestamp echo
  /// for collector-side offset estimation). Call between construction and
  /// start()/run(); the server shares the node's event loop, so handlers
  /// read all process state race-free.
  bool start_introspect(std::uint16_t port, std::string* error);
  [[nodiscard]] std::uint16_t introspect_port() const {
    return introspect_ ? introspect_->port() : 0;
  }
  [[nodiscard]] IntrospectServer* introspect() { return introspect_.get(); }

  /// Copies the transport / NetEnv / link-clock counters into the metrics
  /// registry (gauges under net.*). Called by the /metrics handler before
  /// rendering and by the daemon before writing artifacts.
  void refresh_net_metrics();

  /// The node's /healthz document (byzcast-healthz-v1).
  [[nodiscard]] Json healthz_json();

  void start() { env_->start(); }  // background loop thread
  void run() { env_->run(); }      // blocking (daemon main)
  void stop() { env_->stop(); }

  [[nodiscard]] NetEnv& env() { return *env_; }
  [[nodiscard]] core::ByzCastSystem& system() { return *system_; }
  [[nodiscard]] const ClusterConfig& config() const { return cfg_; }
  [[nodiscard]] const std::optional<NodeIdentity>& self() const {
    return self_;
  }
  [[nodiscard]] ProcessId self_pid() const { return self_pid_; }
  /// "g2_r0" for replica seats, "client" otherwise; names dump files.
  [[nodiscard]] std::string node_name() const;
  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] MonitorHub& monitors() { return monitors_; }
  [[nodiscard]] SpanLog& spans() { return spans_; }
  [[nodiscard]] core::DeliveryLog& delivery_log() {
    return system_->delivery_log();
  }
  [[nodiscard]] const std::vector<std::unique_ptr<core::Client>>& clients()
      const {
    return clients_;
  }

 private:
  ClusterConfig cfg_;
  std::optional<NodeIdentity> self_;
  ProcessId self_pid_;
  MetricsRegistry metrics_;
  MonitorHub monitors_;
  SpanLog spans_;
  std::unique_ptr<NetEnv> env_;
  std::unique_ptr<core::ByzCastSystem> system_;
  std::unique_ptr<IntrospectServer> introspect_;
  std::vector<std::unique_ptr<core::Client>> clients_;
};

class InProcessCluster {
 public:
  /// One ClusterNode per replica seat plus one client-only node, each
  /// listening on an ephemeral port. Every node (client included) also gets
  /// an ephemeral introspection server; the real ports are folded into
  /// resolved(), so a collector can scrape the in-process cluster exactly
  /// like a multi-process one. Add clients (add_client) before start().
  explicit InProcessCluster(ClusterConfig cfg);
  ~InProcessCluster();

  core::Client& add_client(const std::string& name) {
    return client_node_->add_client(name);
  }

  /// Connects everyone against the resolved (real-port) config and starts
  /// every loop.
  void start();
  void stop();

  /// Simulates a process kill mid-run: stops the node's loop and tears its
  /// sockets down; peers reconnect-retry against nothing. The seat is
  /// excluded from the correct set of check_properties().
  void kill_replica(GroupId g, int replica);

  [[nodiscard]] ClusterNode& replica_node(GroupId g, int replica);
  [[nodiscard]] ClusterNode& client_node() { return *client_node_; }
  [[nodiscard]] const ClusterConfig& resolved() const { return resolved_; }

  /// Sum of a-deliveries across live replica nodes (quiescence poll).
  [[nodiscard]] std::uint64_t total_deliveries() const;
  [[nodiscard]] std::uint64_t total_monitor_violations() const;

  /// Merges the per-node delivery logs and checks the five properties
  /// against `sent`; killed seats are not required to have delivered.
  [[nodiscard]] core::PropertyResult check_properties(
      const std::vector<core::SentMessage>& sent) const;

 private:
  [[nodiscard]] std::size_t node_index(GroupId g, int replica) const;

  ClusterConfig resolved_;
  std::vector<std::unique_ptr<ClusterNode>> replica_nodes_;  // pid order
  std::unique_ptr<ClusterNode> client_node_;
  std::set<std::pair<std::int32_t, int>> killed_;
  bool started_ = false;
};

}  // namespace byzcast::net
