#include "net/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <utility>

#include "common/contracts.hpp"

namespace byzcast::net {

namespace {
constexpr int kMaxEvents = 64;
}  // namespace

EventLoop::EventLoop() : epoch_(std::chrono::steady_clock::now()) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  BZC_ENSURES(epoll_fd_ >= 0);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  BZC_ENSURES(wake_fd_ >= 0);
  struct epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  BZC_ENSURES(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) == 0);
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

Time EventLoop::now() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void EventLoop::add_fd(int fd, std::uint32_t events, FdCallback cb) {
  fd_callbacks_[fd] = std::move(cb);
  struct epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  BZC_ENSURES(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0);
}

void EventLoop::mod_fd(int fd, std::uint32_t events) {
  struct epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  BZC_ENSURES(::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0);
}

void EventLoop::del_fd(int fd) {
  fd_callbacks_.erase(fd);
  // The fd may already be gone (closed elsewhere); best effort.
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

void EventLoop::post(std::function<void()> fn) {
  {
    const std::lock_guard<std::mutex> lock(posted_mu_);
    posted_.push_back(std::move(fn));
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] const auto n = ::write(wake_fd_, &one, sizeof one);
}

void EventLoop::schedule(Time delay, std::function<void()> fn) {
  BZC_EXPECTS(!running() || in_loop_thread());
  if (delay < 0) delay = 0;
  timers_.push(Timer{now() + delay, timer_seq_++, std::move(fn)});
}

void EventLoop::drain_posted() {
  std::vector<std::function<void()>> batch;
  {
    const std::lock_guard<std::mutex> lock(posted_mu_);
    batch.swap(posted_);
  }
  for (auto& fn : batch) fn();
}

void EventLoop::run_due_timers() {
  const Time t = now();
  while (!timers_.empty() && timers_.top().deadline <= t) {
    // priority_queue::top() is const; the function is moved out via the
    // usual const_cast idiom before pop.
    auto fn = std::move(const_cast<Timer&>(timers_.top()).fn);
    timers_.pop();
    fn();
  }
}

int EventLoop::next_timeout_ms() const {
  if (timers_.empty()) return 100;  // re-check stop flag periodically
  const Time delta = timers_.top().deadline - now();
  if (delta <= 0) return 0;
  // Round up so timers never fire early; cap to keep stop() responsive.
  const Time ms = (delta + kMillisecond - 1) / kMillisecond;
  return static_cast<int>(ms > 100 ? 100 : ms);
}

void EventLoop::run() {
  loop_thread_ = std::this_thread::get_id();
  running_.store(true, std::memory_order_release);
  struct epoll_event events[kMaxEvents];
  while (!stop_requested_.load(std::memory_order_acquire)) {
    const int n =
        ::epoll_wait(epoll_fd_, events, kMaxEvents, next_timeout_ms());
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t drain = 0;
        [[maybe_unused]] const auto r = ::read(wake_fd_, &drain, sizeof drain);
        continue;
      }
      const auto it = fd_callbacks_.find(fd);
      // A callback earlier in this batch may have del_fd()'d this one.
      if (it == fd_callbacks_.end()) continue;
      // Copy: the callback may del_fd itself (erasing the map entry).
      const FdCallback cb = it->second;
      cb(events[i].events);
    }
    drain_posted();
    run_due_timers();
  }
  drain_posted();
  running_.store(false, std::memory_order_release);
  stop_requested_.store(false, std::memory_order_release);
}

void EventLoop::request_stop() {
  stop_requested_.store(true, std::memory_order_release);
  const std::uint64_t one = 1;
  [[maybe_unused]] const auto n = ::write(wake_fd_, &one, sizeof one);
}

}  // namespace byzcast::net
