// byzcast-loadgen: closed-loop client driver for a running byzcastd cluster,
// plus the offline dump checker that turns per-process artifacts back into
// a global property verdict.
//
// Load mode (default):
//   byzcast-loadgen --config cluster.json --out-dir run/ \
//       --clients 2 --msgs 100 --global-fraction 0.5 --payload 64
// Issues `msgs` messages per client closed-loop (next message from the
// completion callback), a `global-fraction` share addressed to a random
// pair of target groups and the rest to a single random target. Writes the
// sent dump (sent_client.json), a latency/throughput summary
// (loadgen_summary.json) and a CSV series row (loadgen.csv) to --out-dir.
// Exit 0 iff every message completed before --timeout-s.
//
// Check mode:
//   byzcast-loadgen --check-dumps --config cluster.json --dir run/ \
//       [--exclude g0:r1 ...]
// Merges every delivery_*.json / sent_*.json under --dir and runs the five
// atomic-multicast property checkers plus the online-monitor violation sum.
// Exit 0 iff everything holds. --exclude marks seats (killed daemons) whose
// dumps impose no obligations.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.hpp"
#include "core/multicast.hpp"
#include "net/cluster.hpp"
#include "net/dump.hpp"
#include "workload/report.hpp"

namespace {

using namespace byzcast;

struct Args {
  std::string config;
  std::string out_dir = ".";
  std::string dir;
  bool check_dumps = false;
  int clients = 2;
  int msgs = 100;
  double global_fraction = 0.5;
  std::size_t payload = 64;
  int timeout_s = 120;
  std::set<std::pair<std::int32_t, int>> excluded;
};

std::optional<Args> parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "byzcast-loadgen: %s needs a value\n",
                     a.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "--check-dumps") {
      args.check_dumps = true;
    } else if (a == "--config") {
      const char* v = value();
      if (!v) return std::nullopt;
      args.config = v;
    } else if (a == "--out-dir") {
      const char* v = value();
      if (!v) return std::nullopt;
      args.out_dir = v;
    } else if (a == "--dir") {
      const char* v = value();
      if (!v) return std::nullopt;
      args.dir = v;
    } else if (a == "--clients") {
      const char* v = value();
      if (!v) return std::nullopt;
      args.clients = std::atoi(v);
    } else if (a == "--msgs") {
      const char* v = value();
      if (!v) return std::nullopt;
      args.msgs = std::atoi(v);
    } else if (a == "--global-fraction") {
      const char* v = value();
      if (!v) return std::nullopt;
      args.global_fraction = std::atof(v);
    } else if (a == "--payload") {
      const char* v = value();
      if (!v) return std::nullopt;
      args.payload = static_cast<std::size_t>(std::atol(v));
    } else if (a == "--timeout-s") {
      const char* v = value();
      if (!v) return std::nullopt;
      args.timeout_s = std::atoi(v);
    } else if (a == "--exclude") {
      const char* v = value();
      if (!v) return std::nullopt;
      int g = -1;
      int r = -1;
      if (std::sscanf(v, "g%d:r%d", &g, &r) != 2) {
        std::fprintf(stderr,
                     "byzcast-loadgen: --exclude expects gN:rM, got %s\n", v);
        return std::nullopt;
      }
      args.excluded.insert({g, r});
    } else {
      std::fprintf(stderr, "byzcast-loadgen: unknown argument %s\n",
                   a.c_str());
      return std::nullopt;
    }
  }
  if (args.config.empty() || (args.check_dumps && args.dir.empty())) {
    std::fprintf(stderr,
                 "usage: byzcast-loadgen --config FILE [--out-dir DIR "
                 "--clients N --msgs N --global-fraction F --payload B "
                 "--timeout-s S]\n"
                 "       byzcast-loadgen --check-dumps --config FILE "
                 "--dir DIR [--exclude gN:rM ...]\n");
    return std::nullopt;
  }
  return args;
}

int run_check(const Args& args, const net::ClusterConfig& cfg) {
  const net::DumpCheckResult r =
      net::check_cluster_dumps(cfg, args.dir, args.excluded);
  std::printf(
      "check-dumps: %s (%zu delivery files, %zu sent files, %zu "
      "deliveries, %zu sent, %llu monitor violations)\n",
      r.ok ? "OK" : "FAIL", r.delivery_files, r.sent_files, r.deliveries,
      r.sent_messages,
      static_cast<unsigned long long>(r.monitor_violations));
  if (!r.ok) std::fprintf(stderr, "check-dumps: %s\n", r.error.c_str());
  return r.ok ? 0 : 1;
}

int run_load(const Args& args, const net::ClusterConfig& cfg) {
  net::ClusterNode node(cfg, std::nullopt);

  std::vector<core::Client*> clients;
  std::vector<Rng> rngs;
  for (int c = 0; c < args.clients; ++c) {
    clients.push_back(&node.add_client("client" + std::to_string(c)));
    rngs.push_back(node.env().fork_rng());
  }
  node.connect(cfg);
  node.start();

  // Wait for the full mesh before offering load, so the first messages are
  // not spent discovering which daemons are still booting.
  const auto connect_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!node.env().transport().all_peers_connected() &&
         std::chrono::steady_clock::now() < connect_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  if (!node.env().transport().all_peers_connected()) {
    std::fprintf(stderr,
                 "byzcast-loadgen: cluster not fully reachable after 30s\n");
    node.stop();
    return 1;
  }

  const auto targets = [&cfg] {
    std::vector<GroupId> out;
    for (const net::GroupSpec& g : cfg.groups) {
      if (g.is_target) out.push_back(g.id);
    }
    return out;
  }();
  const int ngroups = static_cast<int>(targets.size());
  const Bytes payload(args.payload, std::uint8_t{0xab});
  const int total = args.clients * args.msgs;

  std::vector<int> sent_count(static_cast<std::size_t>(args.clients), 0);
  std::vector<std::vector<std::vector<GroupId>>> issued(
      static_cast<std::size_t>(args.clients));
  std::atomic<int> done{0};
  LatencyRecorder latency;  // loop-thread-only, like the completions

  // Closed loop, entirely on the node's loop thread: the completion
  // callback issues the next message directly.
  std::function<void(int)> issue = [&](int c) {
    auto& count = sent_count[static_cast<std::size_t>(c)];
    if (count == args.msgs) return;
    ++count;
    Rng& rng = rngs[static_cast<std::size_t>(c)];
    std::vector<GroupId> dst;
    if (ngroups > 1 && rng.next_bool(args.global_fraction)) {
      const auto a = static_cast<std::size_t>(
          rng.next_below(static_cast<std::uint64_t>(ngroups)));
      auto b = static_cast<std::size_t>(
          rng.next_below(static_cast<std::uint64_t>(ngroups - 1)));
      if (b >= a) ++b;
      dst = {targets[a], targets[b]};
    } else {
      dst = {targets[static_cast<std::size_t>(
          rng.next_below(static_cast<std::uint64_t>(ngroups)))]};
    }
    core::MulticastMessage canon;
    canon.dst = dst;
    canon.canonicalize();
    issued[static_cast<std::size_t>(c)].push_back(std::move(canon.dst));
    clients[static_cast<std::size_t>(c)]->a_multicast(
        std::move(dst), payload,
        [&, c](const core::MulticastMessage&, Time lat) {
          latency.record(node.env().now(), lat);
          done.fetch_add(1);
          issue(c);
        });
  };

  const auto t0 = std::chrono::steady_clock::now();
  for (int c = 0; c < args.clients; ++c) {
    node.env().post([&issue, c] { issue(c); });
  }
  const auto deadline = t0 + std::chrono::seconds(args.timeout_s);
  while (done.load() < total &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const auto t1 = std::chrono::steady_clock::now();
  node.stop();

  const int completed = done.load();
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  const double throughput = completed / (elapsed_ms / 1000.0);

  // Artifacts. The sent dump is the checker's ground truth for validity.
  net::SentDump dump;
  dump.node = "client";
  for (int c = 0; c < args.clients; ++c) {
    const auto& dsts = issued[static_cast<std::size_t>(c)];
    for (std::size_t k = 0; k < dsts.size(); ++k) {
      dump.sent.push_back(core::SentMessage{
          MessageId{clients[static_cast<std::size_t>(c)]->id(),
                    static_cast<std::uint64_t>(k)},
          dsts[k]});
    }
  }
  std::string error;
  if (!net::write_json_file(args.out_dir + "/sent_client.json",
                            net::sent_dump_to_json(dump), &error)) {
    std::fprintf(stderr, "byzcast-loadgen: %s\n", error.c_str());
  }

  const auto tr = node.env().transport().stats();
  net::Json summary = net::Json::object();
  summary.set("completed", net::Json::number(completed));
  summary.set("total", net::Json::number(total));
  summary.set("elapsed_ms", net::Json::number(elapsed_ms));
  summary.set("throughput_msgs_s", net::Json::number(throughput));
  summary.set("latency_mean_ms", net::Json::number(latency.mean_ms()));
  summary.set("latency_p50_ms", net::Json::number(latency.percentile_ms(50)));
  summary.set("latency_p95_ms", net::Json::number(latency.percentile_ms(95)));
  summary.set("latency_p99_ms", net::Json::number(latency.percentile_ms(99)));
  summary.set("bytes_sent",
              net::Json::number(static_cast<double>(tr.bytes_sent)));
  summary.set("bytes_received",
              net::Json::number(static_cast<double>(tr.bytes_received)));
  summary.set("reconnects",
              net::Json::number(static_cast<double>(tr.reconnects)));
  summary.set("dropped_queue_full",
              net::Json::number(static_cast<double>(tr.dropped_queue_full)));
  if (!net::write_json_file(args.out_dir + "/loadgen_summary.json", summary,
                            &error)) {
    std::fprintf(stderr, "byzcast-loadgen: %s\n", error.c_str());
  }
  workload::write_series_csv(
      args.out_dir + "/loadgen.csv",
      {"clients", "msgs", "global_fraction", "completed", "elapsed_ms",
       "throughput_msgs_s", "latency_mean_ms", "latency_p95_ms"},
      {{std::to_string(args.clients), std::to_string(args.msgs),
        std::to_string(args.global_fraction), std::to_string(completed),
        std::to_string(elapsed_ms), std::to_string(throughput),
        std::to_string(latency.mean_ms()),
        std::to_string(latency.percentile_ms(95))}});

  std::printf(
      "loadgen: %d/%d completed in %.1f ms (%.0f msgs/s, mean %.2f ms, "
      "p95 %.2f ms)\n",
      completed, total, elapsed_ms, throughput, latency.mean_ms(),
      latency.percentile_ms(95));
  return completed == total ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv);
  if (!args) return 2;
  std::string error;
  const auto cfg = net::ClusterConfig::load_file(args->config, &error);
  if (!cfg) {
    std::fprintf(stderr, "byzcast-loadgen: %s\n", error.c_str());
    return 2;
  }
  return args->check_dumps ? run_check(*args, *cfg) : run_load(*args, *cfg);
}
