// byzcast-loadgen: closed-loop client driver for a running byzcastd cluster,
// plus the offline dump checker that turns per-process artifacts back into
// a global property verdict.
//
// Load mode (default):
//   byzcast-loadgen --config cluster.json --out-dir run/ \
//       --clients 2 --msgs 100 --global-fraction 0.5 --payload 64
// Issues `msgs` messages per client closed-loop (next message from the
// completion callback), a `global-fraction` share addressed to a random
// pair of target groups and the rest to a single random target. Writes the
// sent dump (sent_client.json), a latency/throughput summary
// (loadgen_summary.json) and a CSV series row (loadgen.csv) to --out-dir.
// Exit 0 iff every message completed before --timeout-s.
//
// Workload mode:
//   byzcast-loadgen --config cluster.json --workload spec.json --out-dir run/
// Drives the cluster OPEN-LOOP from a workload spec
// (configs/workloads/*.json): a wall-clock RateController paces Poisson
// arrivals at the spec's rate (fixed or step schedule; drift-corrected, so
// scheduler jitter does not shave the offered load), destinations come from
// the spec's pattern — including Zipf skew and the per-class local/global
// rate split — and clients_per_group / payload / warmup / duration are read
// from the spec. Emits the same artifacts as load mode. Exit 0 iff every
// issued message completed before the post-run grace timeout.
//
// Check mode:
//   byzcast-loadgen --check-dumps --config cluster.json --dir run/ \
//       [--exclude g0:r1 ...]
// Merges every delivery_*.json / sent_*.json under --dir and runs the five
// atomic-multicast property checkers plus the online-monitor violation sum.
// Exit 0 iff everything holds. --exclude marks seats (killed daemons) whose
// dumps impose no obligations.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.hpp"
#include "core/multicast.hpp"
#include "net/cluster.hpp"
#include "net/dump.hpp"
#include "workload/generator.hpp"
#include "workload/rate.hpp"
#include "workload/report.hpp"
#include "workload/spec.hpp"

namespace {

using namespace byzcast;

struct Args {
  std::string config;
  std::string out_dir = ".";
  std::string dir;
  std::string workload;  // spec path; non-empty selects workload mode
  bool check_dumps = false;
  int clients = 2;
  int msgs = 100;
  double global_fraction = 0.5;
  std::size_t payload = 64;
  int timeout_s = 120;
  /// Span-tracing sampling period: every n-th message per client is traced.
  /// -1 = auto: 64 when the config enables client introspection, else off.
  int trace_sample_every = -1;
  /// Keep the client process alive (serving its introspection endpoints)
  /// for this long after the run, so a collector can scrape the
  /// client-side end-to-end spans before they vanish with the process.
  int linger_s = 0;
  std::set<std::pair<std::int32_t, int>> excluded;
};

std::optional<Args> parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "byzcast-loadgen: %s needs a value\n",
                     a.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "--check-dumps") {
      args.check_dumps = true;
    } else if (a == "--config") {
      const char* v = value();
      if (!v) return std::nullopt;
      args.config = v;
    } else if (a == "--out-dir") {
      const char* v = value();
      if (!v) return std::nullopt;
      args.out_dir = v;
    } else if (a == "--dir") {
      const char* v = value();
      if (!v) return std::nullopt;
      args.dir = v;
    } else if (a == "--workload") {
      const char* v = value();
      if (!v) return std::nullopt;
      args.workload = v;
    } else if (a == "--clients") {
      const char* v = value();
      if (!v) return std::nullopt;
      args.clients = std::atoi(v);
    } else if (a == "--msgs") {
      const char* v = value();
      if (!v) return std::nullopt;
      args.msgs = std::atoi(v);
    } else if (a == "--global-fraction") {
      const char* v = value();
      if (!v) return std::nullopt;
      args.global_fraction = std::atof(v);
    } else if (a == "--payload") {
      const char* v = value();
      if (!v) return std::nullopt;
      args.payload = static_cast<std::size_t>(std::atol(v));
    } else if (a == "--timeout-s") {
      const char* v = value();
      if (!v) return std::nullopt;
      args.timeout_s = std::atoi(v);
    } else if (a == "--trace-sample-every") {
      const char* v = value();
      if (!v) return std::nullopt;
      args.trace_sample_every = std::atoi(v);
    } else if (a == "--linger-s") {
      const char* v = value();
      if (!v) return std::nullopt;
      args.linger_s = std::atoi(v);
    } else if (a == "--exclude") {
      const char* v = value();
      if (!v) return std::nullopt;
      int g = -1;
      int r = -1;
      if (std::sscanf(v, "g%d:r%d", &g, &r) != 2) {
        std::fprintf(stderr,
                     "byzcast-loadgen: --exclude expects gN:rM, got %s\n", v);
        return std::nullopt;
      }
      args.excluded.insert({g, r});
    } else {
      std::fprintf(stderr, "byzcast-loadgen: unknown argument %s\n",
                   a.c_str());
      return std::nullopt;
    }
  }
  if (args.config.empty() || (args.check_dumps && args.dir.empty())) {
    std::fprintf(stderr,
                 "usage: byzcast-loadgen --config FILE [--out-dir DIR "
                 "--clients N --msgs N --global-fraction F --payload B "
                 "--timeout-s S --trace-sample-every N --linger-s S]\n"
                 "       byzcast-loadgen --config FILE --workload SPEC.json "
                 "[--out-dir DIR --timeout-s S]\n"
                 "       byzcast-loadgen --check-dumps --config FILE "
                 "--dir DIR [--exclude gN:rM ...]\n");
    return std::nullopt;
  }
  return args;
}

int run_check(const Args& args, const net::ClusterConfig& cfg) {
  const net::DumpCheckResult r =
      net::check_cluster_dumps(cfg, args.dir, args.excluded);
  std::printf(
      "check-dumps: %s (%zu delivery files, %zu sent files, %zu "
      "deliveries, %zu sent, %llu monitor violations)\n",
      r.ok ? "OK" : "FAIL", r.delivery_files, r.sent_files, r.deliveries,
      r.sent_messages,
      static_cast<unsigned long long>(r.monitor_violations));
  if (!r.ok) std::fprintf(stderr, "check-dumps: %s\n", r.error.c_str());
  return r.ok ? 0 : 1;
}

/// Client-side observability setup shared by both load modes: starts the
/// introspection server when the config assigns the load generator one
/// (client_introspect_port), so a collector can scrape the client's
/// end-to-end spans, and resolves the span-sampling period (explicit flag
/// wins; otherwise sampling defaults on at 1/64 exactly when introspection
/// is on — spans nobody can scrape are wasted memory).
bool setup_client_observability(const net::ClusterConfig& cfg,
                                net::ClusterNode& node) {
  if (cfg.client_introspect_port == 0) return true;
  std::string error;
  if (!node.start_introspect(cfg.client_introspect_port, &error)) {
    std::fprintf(stderr, "byzcast-loadgen: %s\n", error.c_str());
    return false;
  }
  return true;
}

std::uint32_t effective_sample_every(const Args& args,
                                     const net::ClusterConfig& cfg) {
  if (args.trace_sample_every >= 0) {
    return static_cast<std::uint32_t>(args.trace_sample_every);
  }
  return cfg.client_introspect_port != 0 ? 64 : 0;
}

/// --linger-s: hold the process (and its introspection endpoints) open
/// after the run so the collector can still scrape /spans.
void linger(const Args& args) {
  if (args.linger_s <= 0) return;
  std::fprintf(stderr, "byzcast-loadgen: lingering %ds for collector scrapes\n",
               args.linger_s);
  std::this_thread::sleep_for(std::chrono::seconds(args.linger_s));
}

/// Shared artifact emission for both load modes: sent dump (the checker's
/// ground truth for validity), JSON summary and CSV row.
void write_load_artifacts(const Args& args, net::ClusterNode& node,
                          const std::vector<core::Client*>& clients,
                          const std::vector<std::vector<std::vector<GroupId>>>&
                              issued,
                          net::Json summary, const char* csv_mode,
                          int issued_total, int completed, double elapsed_ms,
                          const LatencyRecorder& latency) {
  net::SentDump dump;
  dump.node = "client";
  for (std::size_t c = 0; c < clients.size(); ++c) {
    const auto& dsts = issued[c];
    for (std::size_t k = 0; k < dsts.size(); ++k) {
      dump.sent.push_back(core::SentMessage{
          MessageId{clients[c]->id(), static_cast<std::uint64_t>(k)},
          dsts[k]});
    }
  }
  std::string error;
  if (!net::write_json_file(args.out_dir + "/sent_client.json",
                            net::sent_dump_to_json(dump), &error)) {
    std::fprintf(stderr, "byzcast-loadgen: %s\n", error.c_str());
  }

  const auto tr = node.env().transport().stats();
  const double throughput = completed / (elapsed_ms / 1000.0);
  summary.set("completed", net::Json::number(completed));
  summary.set("total", net::Json::number(issued_total));
  summary.set("elapsed_ms", net::Json::number(elapsed_ms));
  summary.set("throughput_msgs_s", net::Json::number(throughput));
  summary.set("latency_mean_ms", net::Json::number(latency.mean_ms()));
  summary.set("latency_p50_ms", net::Json::number(latency.percentile_ms(50)));
  summary.set("latency_p95_ms", net::Json::number(latency.percentile_ms(95)));
  summary.set("latency_p99_ms", net::Json::number(latency.percentile_ms(99)));
  summary.set("bytes_sent",
              net::Json::number(static_cast<double>(tr.bytes_sent)));
  summary.set("bytes_received",
              net::Json::number(static_cast<double>(tr.bytes_received)));
  summary.set("reconnects",
              net::Json::number(static_cast<double>(tr.reconnects)));
  summary.set("dropped_queue_full",
              net::Json::number(static_cast<double>(tr.dropped_queue_full)));
  if (!net::write_json_file(args.out_dir + "/loadgen_summary.json", summary,
                            &error)) {
    std::fprintf(stderr, "byzcast-loadgen: %s\n", error.c_str());
  }
  workload::write_series_csv(
      args.out_dir + "/loadgen.csv",
      {"mode", "clients", "total", "completed", "elapsed_ms",
       "throughput_msgs_s", "latency_mean_ms", "latency_p95_ms"},
      {{csv_mode, std::to_string(clients.size()),
        std::to_string(issued_total), std::to_string(completed),
        std::to_string(elapsed_ms), std::to_string(throughput),
        std::to_string(latency.mean_ms()),
        std::to_string(latency.percentile_ms(95))}});
}

/// Open-loop workload mode: wall-clock RateControllers pace Poisson
/// arrivals per the spec's schedule; the loop thread owns generators,
/// recorders and the send path, the main thread only decides *when*.
int run_workload_load(const Args& args, const net::ClusterConfig& cfg,
                      const workload::WorkloadSpec& spec) {
  if (spec.schedule.kind == workload::RateSchedule::Kind::kSweep) {
    std::fprintf(stderr,
                 "byzcast-loadgen: sweep schedules are sim-only (run "
                 "bench_sweep); use a fixed or step rate over TCP\n");
    return 2;
  }
  const std::vector<double> rates =
      spec.schedule.kind == workload::RateSchedule::Kind::kStep
          ? spec.schedule.rates
          : std::vector<double>{spec.schedule.fixed_rate};
  for (const double r : rates) {
    if (r <= 0.0) {
      std::fprintf(stderr,
                   "byzcast-loadgen: workload mode needs a positive rate\n");
      return 2;
    }
  }

  net::ClusterNode node(cfg, std::nullopt);
  if (!setup_client_observability(cfg, node)) return 1;
  const std::uint32_t sample_every = effective_sample_every(args, cfg);

  const auto targets = [&cfg] {
    std::vector<GroupId> out;
    for (const net::GroupSpec& g : cfg.groups) {
      if (g.is_target) out.push_back(g.id);
    }
    return out;
  }();
  const int ngroups = static_cast<int>(targets.size());
  const int nclients = spec.base.clients_per_group * ngroups;

  std::vector<core::Client*> clients;
  std::vector<workload::DestinationGenerator> generators;
  std::vector<Rng> rngs;
  for (int c = 0; c < nclients; ++c) {
    clients.push_back(&node.add_client("client" + std::to_string(c)));
    clients.back()->set_trace_sample_every(sample_every);
    generators.emplace_back(spec.base.workload, targets,
                            static_cast<std::size_t>(c % ngroups));
    rngs.push_back(node.env().fork_rng());
  }
  node.connect(cfg);
  node.start();

  const auto connect_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!node.env().transport().all_peers_connected() &&
         std::chrono::steady_clock::now() < connect_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  if (!node.env().transport().all_peers_connected()) {
    std::fprintf(stderr,
                 "byzcast-loadgen: cluster not fully reachable after 30s\n");
    node.stop();
    return 1;
  }

  const Bytes payload(spec.base.payload_size, std::uint8_t{0xab});
  std::vector<std::vector<std::vector<GroupId>>> issued(
      static_cast<std::size_t>(nclients));
  std::atomic<int> done{0};
  std::atomic<int> sent{0};
  LatencyRecorder latency;  // loop-thread-only, like the completions
  latency.set_warmup(spec.base.warmup);

  const auto t0 = std::chrono::steady_clock::now();
  const auto elapsed_ns = [&t0] {
    return static_cast<Time>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
  };

  // Destination class per arrival: kPattern lets the generator mix; a
  // local_share in [0,1] runs two processes with forced classes.
  enum class Cls { kPattern, kLocal, kGlobal };
  const auto fire = [&](Cls cls) {
    node.env().post([&, cls] {
      const int c = sent.fetch_add(1) % nclients;
      auto& gen = generators[static_cast<std::size_t>(c)];
      Rng& rng = rngs[static_cast<std::size_t>(c)];
      std::vector<GroupId> dst;
      switch (cls) {
        case Cls::kPattern: dst = gen.next(rng); break;
        case Cls::kLocal: dst = gen.next_local(rng); break;
        case Cls::kGlobal: dst = gen.next_global(rng); break;
      }
      core::MulticastMessage canon;
      canon.dst = dst;
      canon.canonicalize();
      issued[static_cast<std::size_t>(c)].push_back(std::move(canon.dst));
      clients[static_cast<std::size_t>(c)]->a_multicast(
          std::move(dst), payload,
          [&](const core::MulticastMessage&, Time lat) {
            latency.record(elapsed_ns(), lat);
            done.fetch_add(1);
          });
    });
  };

  // One or two arrival processes, each with drift correction against the
  // shared wall clock; the main thread sleeps to the earliest next arrival.
  struct Proc {
    workload::RateController ctl;
    Cls cls;
    Time next_at;
  };
  const double share = spec.base.open_loop_local_share;
  std::vector<Proc> procs;
  Rng seed_rng(spec.base.seed ^ 0x9e3779b97f4a7c15ULL);
  const auto add_proc = [&](double rate, Cls cls) {
    if (rate <= 0.0) return;
    procs.push_back(Proc{workload::RateController(rate, seed_rng.fork(), 0),
                         cls, 0});
  };
  const auto retarget = [&](double total) {
    std::size_t i = 0;
    const auto apply = [&](double rate) {
      if (rate > 0.0 && i < procs.size()) procs[i++].ctl.set_rate(rate);
    };
    if (share >= 0.0) {
      const double s = std::min(1.0, std::max(0.0, share));
      apply(total * s);
      apply(total * (1.0 - s));
    } else {
      apply(total);
    }
  };
  if (share >= 0.0) {
    const double s = std::min(1.0, std::max(0.0, share));
    add_proc(rates[0] * s, Cls::kLocal);
    add_proc(rates[0] * (1.0 - s), Cls::kGlobal);
  } else {
    add_proc(rates[0], Cls::kPattern);
  }
  for (Proc& p : procs) p.next_at = p.ctl.next_delay(0);

  // Segments: warmup rides the first one; each subsequent step rate gets a
  // full `duration` window of its own.
  const Time segment = spec.base.duration;
  const Time horizon =
      spec.base.warmup + segment * static_cast<Time>(rates.size());
  std::size_t current_rate = 0;
  while (true) {
    const Time now = elapsed_ns();
    if (now >= horizon) break;
    const std::size_t want = now <= spec.base.warmup + segment
        ? 0
        : static_cast<std::size_t>(
              (now - spec.base.warmup - 1) / segment);
    if (want > current_rate && want < rates.size()) {
      current_rate = want;
      retarget(rates[current_rate]);
    }
    Proc* next = &procs[0];
    for (Proc& p : procs) {
      if (p.next_at < next->next_at) next = &p;
    }
    if (next->next_at > now) {
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(next->next_at - now));
    }
    fire(next->cls);
    next->next_at = elapsed_ns() + next->ctl.next_delay(elapsed_ns());
  }

  // Open loop has in-flight messages at the horizon; grant a grace window
  // for the tail to drain so the dump checker sees every send delivered.
  // `sent` increments on the loop thread as posts execute, so wait until it
  // is both stable (the post queue drained) and matched by completions.
  const auto grace =
      std::chrono::steady_clock::now() + std::chrono::seconds(args.timeout_s);
  int issued_total = sent.load();
  while (std::chrono::steady_clock::now() < grace) {
    const int s = sent.load();
    if (done.load() >= s && s == issued_total) break;
    issued_total = s;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  issued_total = sent.load();
  const double elapsed_ms =
      static_cast<double>(elapsed_ns()) / 1e6;
  linger(args);
  node.stop();

  const int completed = done.load();
  double offered = 0.0;
  std::uint64_t behind = 0;
  for (const Proc& p : procs) behind += p.ctl.behind_ns();
  for (const double r : rates) offered += r;
  offered /= static_cast<double>(rates.size());

  net::Json summary = net::Json::object();
  summary.set("mode", net::Json::string("workload"));
  summary.set("workload", net::Json::string(spec.name));
  summary.set("offered_rate_msgs_s", net::Json::number(offered));
  summary.set("rate_behind_ns",
              net::Json::number(static_cast<double>(behind)));
  write_load_artifacts(args, node, clients, issued, std::move(summary),
                       "workload", issued_total, completed, elapsed_ms,
                       latency);

  std::printf(
      "loadgen[workload %s]: %d/%d completed in %.1f ms (offered %.0f "
      "msg/s, mean %.2f ms, p95 %.2f ms)\n",
      spec.name.c_str(), completed, issued_total, elapsed_ms, offered,
      latency.mean_ms(), latency.percentile_ms(95));
  return completed == issued_total ? 0 : 1;
}

int run_load(const Args& args, const net::ClusterConfig& cfg) {
  net::ClusterNode node(cfg, std::nullopt);
  if (!setup_client_observability(cfg, node)) return 1;
  const std::uint32_t sample_every = effective_sample_every(args, cfg);

  std::vector<core::Client*> clients;
  std::vector<Rng> rngs;
  for (int c = 0; c < args.clients; ++c) {
    clients.push_back(&node.add_client("client" + std::to_string(c)));
    clients.back()->set_trace_sample_every(sample_every);
    rngs.push_back(node.env().fork_rng());
  }
  node.connect(cfg);
  node.start();

  // Wait for the full mesh before offering load, so the first messages are
  // not spent discovering which daemons are still booting.
  const auto connect_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!node.env().transport().all_peers_connected() &&
         std::chrono::steady_clock::now() < connect_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  if (!node.env().transport().all_peers_connected()) {
    std::fprintf(stderr,
                 "byzcast-loadgen: cluster not fully reachable after 30s\n");
    node.stop();
    return 1;
  }

  const auto targets = [&cfg] {
    std::vector<GroupId> out;
    for (const net::GroupSpec& g : cfg.groups) {
      if (g.is_target) out.push_back(g.id);
    }
    return out;
  }();
  const int ngroups = static_cast<int>(targets.size());
  const Bytes payload(args.payload, std::uint8_t{0xab});
  const int total = args.clients * args.msgs;

  std::vector<int> sent_count(static_cast<std::size_t>(args.clients), 0);
  std::vector<std::vector<std::vector<GroupId>>> issued(
      static_cast<std::size_t>(args.clients));
  std::atomic<int> done{0};
  LatencyRecorder latency;  // loop-thread-only, like the completions

  // Closed loop, entirely on the node's loop thread: the completion
  // callback issues the next message directly.
  std::function<void(int)> issue = [&](int c) {
    auto& count = sent_count[static_cast<std::size_t>(c)];
    if (count == args.msgs) return;
    ++count;
    Rng& rng = rngs[static_cast<std::size_t>(c)];
    std::vector<GroupId> dst;
    if (ngroups > 1 && rng.next_bool(args.global_fraction)) {
      const auto a = static_cast<std::size_t>(
          rng.next_below(static_cast<std::uint64_t>(ngroups)));
      auto b = static_cast<std::size_t>(
          rng.next_below(static_cast<std::uint64_t>(ngroups - 1)));
      if (b >= a) ++b;
      dst = {targets[a], targets[b]};
    } else {
      dst = {targets[static_cast<std::size_t>(
          rng.next_below(static_cast<std::uint64_t>(ngroups)))]};
    }
    core::MulticastMessage canon;
    canon.dst = dst;
    canon.canonicalize();
    issued[static_cast<std::size_t>(c)].push_back(std::move(canon.dst));
    clients[static_cast<std::size_t>(c)]->a_multicast(
        std::move(dst), payload,
        [&, c](const core::MulticastMessage&, Time lat) {
          latency.record(node.env().now(), lat);
          done.fetch_add(1);
          issue(c);
        });
  };

  const auto t0 = std::chrono::steady_clock::now();
  for (int c = 0; c < args.clients; ++c) {
    node.env().post([&issue, c] { issue(c); });
  }
  const auto deadline = t0 + std::chrono::seconds(args.timeout_s);
  while (done.load() < total &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const auto t1 = std::chrono::steady_clock::now();
  linger(args);
  node.stop();

  const int completed = done.load();
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();

  net::Json summary = net::Json::object();
  summary.set("mode", net::Json::string("closed-loop"));
  summary.set("global_fraction", net::Json::number(args.global_fraction));
  write_load_artifacts(args, node, clients, issued, std::move(summary),
                       "closed-loop", total, completed, elapsed_ms, latency);

  std::printf(
      "loadgen: %d/%d completed in %.1f ms (%.0f msgs/s, mean %.2f ms, "
      "p95 %.2f ms)\n",
      completed, total, elapsed_ms, completed / (elapsed_ms / 1000.0),
      latency.mean_ms(), latency.percentile_ms(95));
  return completed == total ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv);
  if (!args) return 2;
  std::string error;
  const auto cfg = net::ClusterConfig::load_file(args->config, &error);
  if (!cfg) {
    std::fprintf(stderr, "byzcast-loadgen: %s\n", error.c_str());
    return 2;
  }
  if (args->check_dumps) return run_check(*args, *cfg);
  if (!args->workload.empty()) {
    const auto spec = workload::load_workload_spec(args->workload, &error);
    if (!spec) {
      std::fprintf(stderr, "byzcast-loadgen: %s\n", error.c_str());
      return 2;
    }
    return run_workload_load(*args, *cfg, *spec);
  }
  return run_load(*args, *cfg);
}
