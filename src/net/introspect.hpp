// Per-daemon introspection server: a minimal HTTP/1.0 responder living on
// the process's existing epoll EventLoop, so a running byzcastd (or the
// load generator) can be scraped without a second thread or any HTTP
// library. Endpoints are registered as exact-path handlers; the standard
// set (/metrics, /healthz, /spans, /dump, /clock) is wired up by
// ClusterNode::start_introspect().
//
// Because every actor of a net-backend process runs on the same loop thread
// and handlers run there too, a handler may read the process's SpanLog,
// DeliveryLog and replica state mid-run without locks — the scrape sees a
// consistent snapshot between two messages.
//
// Protocol subset: GET only, request line + headers up to 8 KiB, response
// with Content-Length and Connection: close, then the connection is torn
// down. That is all a collector or `curl` needs; anything fancier belongs
// in a real server.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "net/event_loop.hpp"

namespace byzcast::net {

class IntrospectServer {
 public:
  struct Response {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
  };

  /// `query` is the raw text after '?' in the request target ("" if none).
  using Handler = std::function<Response(const std::string& query)>;

  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t bad_requests = 0;  // parse failures / unknown paths
  };

  explicit IntrospectServer(EventLoop& loop);
  ~IntrospectServer();

  IntrospectServer(const IntrospectServer&) = delete;
  IntrospectServer& operator=(const IntrospectServer&) = delete;

  /// Registers `h` for exact path `path` (e.g. "/metrics"). Pre-listen or
  /// loop thread.
  void handle(std::string path, Handler h);

  /// Binds and listens; port 0 picks an ephemeral port (see port()). False
  /// with `error` prose on failure. Pre-run or loop thread.
  bool listen(const std::string& host, std::uint16_t port,
              std::string* error = nullptr);
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Closes the listener and every in-flight client. Loop thread.
  void shutdown();

  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct Client;

  void handle_accept();
  void on_client_event(Client* client, std::uint32_t events);
  /// True once the request is complete and a response has been queued.
  bool maybe_respond(Client* client);
  void flush(Client* client);
  void close_client(Client* client);

  EventLoop& loop_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::map<std::string, Handler> handlers_;
  std::map<Client*, std::unique_ptr<Client>> clients_;
  Stats stats_;
};

/// Parses "k1=v1&k2=v2" query text; later duplicates win. No %-decoding —
/// the introspection endpoints only take numeric arguments.
[[nodiscard]] std::map<std::string, std::string> parse_query(
    const std::string& query);

}  // namespace byzcast::net
