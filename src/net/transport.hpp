// TCP transport for one process of a cluster: a listener for inbound
// connections, one managed outbound connection per configured peer
// (reconnect-on-failure with exponential backoff), and pid-based routing of
// sim::WireMessage frames.
//
// Routing: pids of configured peers (the cluster's replica daemons) route
// over the managed outbound connection to that peer — frames sent while the
// dial is still in flight queue on the connection and flush at
// establishment. Pids *learned* from an inbound HELLO (clients: the load
// generator announces its client pids on every connection it dials) route
// back over that inbound connection and are forgotten when it closes.
// Anything else is dropped and counted, like a packet with no route.
//
// Per-link artificial delay (the Table I WAN emulation): a delay resolver
// maps a destination pid to a one-way delay; outgoing frames are held on the
// loop's timer heap for that long before hitting the socket. Zero-delay
// sends skip the heap entirely.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/connection.hpp"
#include "net/event_loop.hpp"
#include "net/frame.hpp"
#include "sim/wire.hpp"

namespace byzcast::net {

struct TransportOptions {
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  std::size_t send_queue_max_bytes = 8u * 1024 * 1024;
  Time reconnect_backoff_min = 50 * kMillisecond;
  Time reconnect_backoff_max = 2 * kSecond;
};

class Transport {
 public:
  struct Stats {
    std::uint64_t messages_sent = 0;
    std::uint64_t messages_received = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_received = 0;
    std::uint64_t dropped_no_route = 0;
    std::uint64_t dropped_queue_full = 0;
    std::uint64_t dropped_decode = 0;   // malformed wire bodies
    std::uint64_t connect_attempts = 0;
    std::uint64_t reconnects = 0;       // attempts after a failure
    std::uint64_t inbound_accepted = 0;
    std::uint64_t inbound_resets = 0;   // framing violations / errors
    std::size_t send_queue_high_water = 0;
    std::uint64_t clock_pings_sent = 0;
    std::uint64_t clock_pongs_received = 0;
  };

  /// Clock-sync state of one live connection: `offset` maps the peer's clock
  /// into ours (local = peer_time - offset), taken at the RTT midpoint of
  /// the best (lowest-RTT) ping/pong exchange so far. `pid` identifies the
  /// link: the first configured pid for outbound peers, the first learned
  /// pid for inbound connections (invalid before any HELLO).
  struct LinkClock {
    ProcessId pid{};
    bool outbound = false;
    Time offset = 0;
    Time min_rtt = -1;
    std::uint64_t samples = 0;
  };

  using MessageHandler = std::function<void(sim::WireMessage)>;
  /// One-way artificial delay to apply before an outgoing frame for `to`
  /// reaches the socket; null or zero result = no delay.
  using DelayFn = std::function<Time(ProcessId to)>;

  Transport(EventLoop& loop, TransportOptions opts);
  ~Transport();

  void set_handler(MessageHandler h) { handler_ = std::move(h); }
  void set_delay_fn(DelayFn fn) { delay_fn_ = std::move(fn); }
  /// Pids hosted by this process, announced via HELLO on every dialed
  /// connection. Call before connect_all().
  void set_local_pids(std::vector<ProcessId> pids) {
    local_pids_ = std::move(pids);
  }

  /// Binds and listens; port 0 picks an ephemeral port (see listen_port()).
  /// False (with `error` prose) when bind fails. Pre-run or loop thread.
  bool listen(const std::string& host, std::uint16_t port,
              std::string* error = nullptr);
  [[nodiscard]] std::uint16_t listen_port() const { return listen_port_; }

  /// Declares a peer endpoint hosting `pids`. Pre-connect_all() only.
  void add_peer(const std::string& host, std::uint16_t port,
                std::vector<ProcessId> pids);

  /// Starts dialing every declared peer. Loop thread (or posted to it).
  void connect_all();

  /// Routes one message; loop thread only. Drops (counted) without a route.
  void send(const sim::WireMessage& msg);

  /// Closes every connection and stops reconnecting. Loop thread.
  void shutdown();

  [[nodiscard]] Stats stats() const;
  /// Per-connection clock-sync snapshots (loop thread only).
  [[nodiscard]] std::vector<LinkClock> link_clocks() const;
  /// True once every configured peer's outbound connection is established.
  [[nodiscard]] bool all_peers_connected() const;

 private:
  struct Peer {
    std::string host;
    std::uint16_t port = 0;
    std::vector<ProcessId> pids;
    std::unique_ptr<Connection> conn;
    Time backoff = 0;
    bool ever_connected = false;
  };

  struct ClockSync {
    Time offset = 0;
    Time min_rtt = -1;
    std::uint64_t samples = 0;
  };

  void dial(std::size_t peer_index);
  void schedule_redial(std::size_t peer_index);
  void handle_accept();
  void reap_inbound();
  void forget_learned(Connection* conn);
  void on_frame(Connection& conn, DecodedFrame frame);
  void send_now(const sim::WireMessage& msg);
  void ping_clock(Connection& conn);
  void start_clock_sync();
  [[nodiscard]] Connection* route(ProcessId to);
  [[nodiscard]] static Connection::Stats accumulate(
      Connection::Stats total, const Connection::Stats& s);

  EventLoop& loop_;
  TransportOptions opts_;
  MessageHandler handler_;
  DelayFn delay_fn_;
  std::vector<ProcessId> local_pids_;

  int listen_fd_ = -1;
  std::uint16_t listen_port_ = 0;

  std::vector<Peer> peers_;
  std::unordered_map<ProcessId, std::size_t> pid_peer_;
  /// Inbound connections, keyed by object identity.
  std::vector<std::unique_ptr<Connection>> inbound_;
  /// Learned routes from HELLO frames on inbound connections.
  std::unordered_map<ProcessId, Connection*> learned_;

  bool shutdown_ = false;
  bool clock_sync_started_ = false;
  /// Peer-clock offsets per live connection; erased when it closes.
  std::unordered_map<const Connection*, ClockSync> clock_;
  Stats stats_;
  /// Byte/frame counters carried over from connections already destroyed.
  Connection::Stats retired_;
};

}  // namespace byzcast::net
