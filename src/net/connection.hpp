// One non-blocking TCP connection owned by an EventLoop. The read side
// accumulates bytes into a FrameDecoder and emits complete frames; the write
// side keeps a bounded queue of Buffer chunks (the shared-payload zero-copy
// chunks from encode_wire_frame) and flushes with writev under EPOLLOUT.
//
// Backpressure: when the queued bytes would exceed `send_queue_max_bytes`
// the *whole frame* is dropped (never a partial frame — the stream would
// desynchronize) and counted; the protocol's retry/retransmission machinery
// recovers, exactly as it does from packet loss. The high-water mark of the
// queue is exported for the "is the send queue the bottleneck" question.
//
// Loop-thread-only, like everything the loop owns.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/buffer.hpp"
#include "net/event_loop.hpp"
#include "net/frame.hpp"

namespace byzcast::net {

class Connection {
 public:
  struct Stats {
    std::uint64_t bytes_in = 0;
    std::uint64_t bytes_out = 0;
    std::uint64_t frames_in = 0;
    std::uint64_t frames_out = 0;
    std::uint64_t frames_dropped = 0;  // send-queue overflow
    std::size_t send_queue_bytes = 0;
    std::size_t send_queue_high_water = 0;
  };

  using FrameHandler = std::function<void(Connection&, DecodedFrame)>;
  /// Fired exactly once, on EOF, socket error, or a framing violation
  /// (decoder poisoned). The connection has deregistered its fd and closed
  /// it by the time this runs; the owner should drop the object.
  using CloseHandler = std::function<void(Connection&)>;
  /// Fired once when an in-progress connect() completes successfully.
  using EstablishedHandler = std::function<void(Connection&)>;

  /// Takes ownership of `fd` (already non-blocking). `connecting` marks a
  /// dialed socket whose connect() is still in progress: writes queue until
  /// the EPOLLOUT establishment check passes.
  Connection(EventLoop& loop, int fd, bool connecting,
             std::size_t max_frame_bytes, std::size_t send_queue_max_bytes);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  void set_frame_handler(FrameHandler h) { on_frame_ = std::move(h); }
  void set_close_handler(CloseHandler h) { on_close_ = std::move(h); }
  void set_established_handler(EstablishedHandler h) {
    on_established_ = std::move(h);
  }

  /// Registers with the loop. Call after the handlers are set.
  void start();

  /// Queues one frame's chunks (header + shared payload) and flushes as far
  /// as the socket allows. Returns false when the frame was dropped because
  /// the queue is over its cap (or the connection is closed).
  bool send_frame(std::vector<Buffer> chunks);

  /// Closes now; fires the close handler (once).
  void close();

  [[nodiscard]] bool established() const { return established_; }
  /// Non-kNone after a framing violation poisoned the read side (the usual
  /// cause of a close that is neither EOF nor a socket error).
  [[nodiscard]] FrameDecoder::Error decode_error() const {
    return decoder_.error();
  }
  [[nodiscard]] bool closed() const { return fd_ < 0; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] int fd() const { return fd_; }

 private:
  struct Chunk {
    Buffer buf;
    std::size_t offset = 0;
  };

  void handle_events(std::uint32_t events);
  void handle_readable();
  /// Flushes the queue; false when the connection died doing so.
  bool flush_writes();
  void update_write_interest();

  EventLoop& loop_;
  int fd_;
  bool established_;
  bool want_write_ = false;
  std::size_t send_queue_max_;
  FrameDecoder decoder_;
  std::deque<Chunk> send_queue_;
  Stats stats_;
  FrameHandler on_frame_;
  CloseHandler on_close_;
  EstablishedHandler on_established_;
};

}  // namespace byzcast::net
