// Cluster deployment config for the net backend: the overlay tree, the
// endpoint of every replica, protocol knobs and (optionally) a region RTT
// matrix for single-host WAN emulation (the paper's Table I). One JSON file
// describes the whole cluster; every byzcastd and the load generator load
// the same file, which is what makes the cross-process pid/key assignment
// consistent (see env.hpp).
//
// All validation is non-aborting: malformed input yields std::nullopt plus
// prose, never a crash — configs are operator input, not internal state.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/tree.hpp"
#include "net/json.hpp"
#include "net/transport.hpp"
#include "sim/profile.hpp"

namespace byzcast::net {

struct Endpoint {
  std::string host;
  std::uint16_t port = 0;
  /// HTTP introspection port of the daemon hosting this replica (0 = the
  /// introspection server is disabled for this process).
  std::uint16_t introspect_port = 0;
};

struct GroupSpec {
  GroupId id;
  bool is_target = true;
  std::optional<GroupId> parent;  // nullopt = tree root
  std::string region;             // empty unless WAN emulation is on
  std::vector<Endpoint> replicas; // exactly 3f+1 entries
};

/// Optional Table-I-style WAN emulation: symmetric region RTT matrix in
/// milliseconds; one-way link delay = RTT / 2.
struct WanModel {
  std::vector<std::string> regions;
  std::vector<std::vector<double>> rtt_ms;  // regions × regions
  double intra_region_rtt_ms = 0.0;
};

struct ClusterConfig {
  std::string name;
  int f = 1;
  std::uint64_t seed = 42;

  // Protocol knobs layered over Profile::wallclock().
  std::uint32_t pipeline_depth = 4;
  std::uint32_t batch_min = 1;
  std::uint32_t batch_max = 400;
  Time batch_timeout = 0;
  Time leader_timeout = 2 * kSecond;
  std::uint32_t checkpoint_period = 256;

  TransportOptions transport;

  std::optional<WanModel> wan;
  /// Region the load generator's clients live in (WAN emulation only);
  /// empty = replies to clients travel with zero artificial delay.
  std::string client_region;
  /// Introspection port of the load generator process (0 = disabled). The
  /// collector scrapes it for the client-side end-to-end spans.
  std::uint16_t client_introspect_port = 0;

  std::vector<GroupSpec> groups;

  // --- construction ------------------------------------------------------

  /// Parses and validates. Returns nullopt with `error` prose on any
  /// structural problem (bad JSON shape, duplicate group, parent cycle,
  /// wrong replica count, unknown region, ...).
  [[nodiscard]] static std::optional<ClusterConfig> from_json(
      const Json& j, std::string* error);
  [[nodiscard]] static std::optional<ClusterConfig> parse(
      const std::string& text, std::string* error);
  [[nodiscard]] static std::optional<ClusterConfig> load_file(
      const std::string& path, std::string* error);

  /// Inverse of from_json: to_json(x).from_json == x. Used by the
  /// round-trip test and by tooling that rewrites ports.
  [[nodiscard]] Json to_json() const;

  // --- derived views -----------------------------------------------------

  [[nodiscard]] int replicas_per_group() const { return 3 * f + 1; }
  [[nodiscard]] int replica_count() const {
    return static_cast<int>(groups.size()) * replicas_per_group();
  }

  /// The deterministic pid of replica `index` of `g`: groups ordered by id
  /// (the same std::map order ByzCastSystem allocates in), replicas within
  /// a group in index order.
  [[nodiscard]] ProcessId pid_of(GroupId g, int index) const;
  /// Inverse of pid_of; nullopt for client pids (>= replica_count()).
  [[nodiscard]] std::optional<std::pair<GroupId, int>> replica_of(
      ProcessId pid) const;
  [[nodiscard]] const GroupSpec* group(GroupId g) const;
  [[nodiscard]] const Endpoint* endpoint_of(ProcessId pid) const;

  /// Builds the finalized overlay tree. Call only on a validated config.
  [[nodiscard]] core::OverlayTree tree() const;

  /// Profile::wallclock() with this config's protocol knobs applied.
  [[nodiscard]] sim::Profile profile() const;

  /// One-way artificial delay for a frame leaving a process in
  /// `from_region` towards `to` (a replica pid resolves to its group's
  /// region; anything else resolves to client_region). 0 without WAN.
  [[nodiscard]] Time link_delay(const std::string& from_region,
                                ProcessId to) const;
  /// Region of the process hosting `pid` (client pids → client_region).
  [[nodiscard]] std::string region_of(ProcessId pid) const;

  friend bool operator==(const ClusterConfig&, const ClusterConfig&);

 private:
  [[nodiscard]] std::optional<std::size_t> region_index(
      const std::string& region) const;
};

}  // namespace byzcast::net
