// The JSON utility moved to common/json.hpp so the workload engine (which
// must not depend on the net backend) can parse spec files with it. This
// forwarding header keeps the historical net::Json spelling working for the
// cluster-config and dump code.
#pragma once

#include "common/json.hpp"

namespace byzcast::net {

using byzcast::Json;

}  // namespace byzcast::net
