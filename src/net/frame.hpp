// Length-prefixed framing for the TCP transport. Every frame is
//
//   magic  u32  'B''Z''C''1' (desync / garbage detector)
//   type   u8   FrameType
//   flags  u8   bit 0: kFlagSentAt (wire messages); other bits must be 0
//   rsvd   u16  reserved, must be 0
//   length u32  body bytes following the 12-byte header
//
// followed by `length` body bytes. A kWireMessage body is
//
//   from i32 | to i32 | mac 32B | [sent_at i64 if kFlagSentAt] | payload...
//
// i.e. exactly a sim::WireMessage minus most of the in-memory timing
// metadata. The receive-side timestamps are stamped locally; `sent_at`
// crosses the wire in the *sender's* clock domain and the transport
// translates it into the local domain using the per-connection clock-sync
// offset (kClockPing/kClockPong below) so cross-process kNetTransit spans
// work like the single-process backends'. A kHello body is
// `count u32 | pid i32 * count` — the dialer announces which ProcessIds live
// behind the connection so the acceptor can route replies (clients are not
// in the static cluster config; daemons learn them here). A kClockPing body
// is `t0 i64` (sender's clock); the receiver answers kClockPong
// `t0 i64 | t_peer i64` echoing t0 and stamping its own clock, from which
// the pinger derives the peer-clock offset at the RTT midpoint.
//
// Everything on the inbound path is bounds-checked and never aborts: frames
// arrive from outside the trust boundary, unlike the simulator's encoders.
// Decode failures surface as FrameDecoder::Error / nullopt and the transport
// resets the connection — the Reader::exhausted() discipline, applied one
// layer down.
//
// Fan-out stays zero-copy: encode_wire_frame materializes one small
// header+meta chunk per recipient and *shares* the payload Buffer, so
// broadcasting the same logical message to N peers writes the same immutable
// payload bytes N times without ever re-serializing or copying them.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/buffer.hpp"
#include "common/bytes.hpp"
#include "sim/wire.hpp"

namespace byzcast::net {

inline constexpr std::uint8_t kFrameMagic[4] = {'B', 'Z', 'C', '1'};
inline constexpr std::size_t kFrameHeaderSize = 12;
/// from + to + mac, before the raw payload bytes.
inline constexpr std::size_t kWireBodyMetaSize = 4 + 4 + 32;
inline constexpr std::size_t kDefaultMaxFrameBytes = 8u * 1024 * 1024;

enum class FrameType : std::uint8_t {
  kHello = 1,
  kWireMessage = 2,
  kClockPing = 3,
  kClockPong = 4,
};

/// Frame flags (header byte 5). Unknown bits poison the decoder.
inline constexpr std::uint8_t kFlagSentAt = 0x01;

struct DecodedFrame {
  FrameType type = FrameType::kWireMessage;
  std::uint8_t flags = 0;
  Bytes body;
};

/// Encodes one frame as a chunk sequence for gathered writes: chunk 0 is the
/// materialized header + wire-meta bytes (per-recipient: to/mac differ),
/// chunk 1 aliases the shared payload Buffer (absent when payload is empty).
[[nodiscard]] std::vector<Buffer> encode_wire_frame(
    const sim::WireMessage& msg);

/// One self-contained HELLO frame (header + body).
[[nodiscard]] Buffer encode_hello_frame(const std::vector<ProcessId>& pids);

/// Self-contained clock-sync frames (header + body).
[[nodiscard]] Buffer encode_clock_ping_frame(Time t0);
[[nodiscard]] Buffer encode_clock_pong_frame(Time t0, Time t_peer);

/// Decodes a kWireMessage body; nullopt if truncated. When `flags` carries
/// kFlagSentAt the body includes the sender-clock `sent_at` (still in the
/// sender's domain — the transport translates it); all other timing
/// metadata is left unstamped (-1) for the receive side to fill.
[[nodiscard]] std::optional<sim::WireMessage> decode_wire_body(
    BytesView body, std::uint8_t flags = 0);

struct ClockPing {
  Time t0 = 0;
};
struct ClockPong {
  Time t0 = 0;
  Time t_peer = 0;
};
[[nodiscard]] std::optional<ClockPing> decode_clock_ping_body(BytesView body);
[[nodiscard]] std::optional<ClockPong> decode_clock_pong_body(BytesView body);

/// Decodes a kHello body; nullopt if malformed (truncated, length
/// mismatch, or an implausible pid count).
[[nodiscard]] std::optional<std::vector<ProcessId>> decode_hello_body(
    BytesView body);

/// Incremental frame parser: feed() raw socket bytes in arbitrary splits,
/// next() pops complete frames. After the first malformed header the decoder
/// is poisoned (error() != kNone, next() returns nothing) — a byte stream
/// that desynchronized cannot be trusted again and the connection must be
/// reset.
class FrameDecoder {
 public:
  enum class Error : std::uint8_t {
    kNone = 0,
    kBadMagic,     // garbage where a header should be
    kBadType,      // unknown FrameType or nonzero reserved fields
    kOversized,    // declared length exceeds the configured maximum
  };

  explicit FrameDecoder(std::size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_(max_frame_bytes) {}

  void feed(const std::uint8_t* data, std::size_t n);

  /// Next complete frame, nullopt when more bytes are needed (or poisoned).
  [[nodiscard]] std::optional<DecodedFrame> next();

  [[nodiscard]] Error error() const { return error_; }
  [[nodiscard]] std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::size_t max_frame_;
  Bytes buf_;
  std::size_t pos_ = 0;
  Error error_ = Error::kNone;
};

[[nodiscard]] const char* to_string(FrameDecoder::Error e);

}  // namespace byzcast::net
