// Run artifacts for the multi-process deployment. Each byzcastd writes a
// delivery dump (its replica's a-delivery sequence plus monitor verdicts)
// on shutdown; the load generator writes a sent dump (every message it
// a-multicast with its canonical destinations). check_cluster_dumps() merges
// all dumps from a directory and runs the five §II-B property checkers over
// the reassembled global log — the cross-process analogue of what the
// in-process harnesses do against a shared DeliveryLog.
//
// Timestamps in dumps are per-process clocks and never compared across
// files; the checkers consume only per-replica delivery order, which each
// dump preserves by construction (records are appended in delivery order).
#pragma once

#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/delivery_log.hpp"
#include "core/properties.hpp"
#include "net/config.hpp"
#include "net/json.hpp"

namespace byzcast::net {

inline constexpr const char* kDeliveryDumpSchema = "byzcast-delivery-dump-v1";
inline constexpr const char* kSentDumpSchema = "byzcast-sent-dump-v1";

struct DeliveryDump {
  std::string node;  // "g0_r2"
  std::uint64_t monitor_violations = 0;
  std::vector<core::DeliveryRecord> records;
};

struct SentDump {
  std::string node;  // "client"
  std::vector<core::SentMessage> sent;
};

[[nodiscard]] Json delivery_dump_to_json(const DeliveryDump& dump);
[[nodiscard]] Json sent_dump_to_json(const SentDump& dump);
[[nodiscard]] std::optional<DeliveryDump> delivery_dump_from_json(
    const Json& j, std::string* error);
[[nodiscard]] std::optional<SentDump> sent_dump_from_json(
    const Json& j, std::string* error);

/// Writes `j` to `path` atomically enough for our purposes (tmp + rename).
bool write_json_file(const std::string& path, const Json& j,
                     std::string* error);
[[nodiscard]] std::optional<Json> read_json_file(const std::string& path,
                                                 std::string* error);

struct DumpCheckResult {
  bool ok = false;
  std::string error;  // property violation or IO/parse failure prose
  std::size_t delivery_files = 0;
  std::size_t sent_files = 0;
  std::size_t deliveries = 0;
  std::size_t sent_messages = 0;
  std::uint64_t monitor_violations = 0;  // summed over delivery dumps
};

/// Loads every delivery_*.json / sent_*.json under `dir`, reassembles the
/// global run and checks the five properties. Seats in `excluded` (group
/// id, replica index) are treated as faulty: their dumps (possibly absent —
/// a killed daemon flushes nothing) impose no obligations.
[[nodiscard]] DumpCheckResult check_cluster_dumps(
    const ClusterConfig& cfg, const std::string& dir,
    const std::set<std::pair<std::int32_t, int>>& excluded = {});

}  // namespace byzcast::net
