#include "net/config.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>

namespace byzcast::net {

namespace {

constexpr double kNsPerMs = 1e6;

bool fail(std::string* error, const std::string& what) {
  if (error) *error = what;
  return false;
}

Time ms_to_ns(double ms) {
  return static_cast<Time>(std::llround(ms * kNsPerMs));
}

double ns_to_ms(Time ns) { return static_cast<double>(ns) / kNsPerMs; }

bool parse_groups(const Json& j, ClusterConfig* cfg, std::string* error) {
  const Json& groups = j.get("groups");
  if (!groups.is_array() || groups.size() == 0) {
    return fail(error, "\"groups\" must be a non-empty array");
  }
  for (std::size_t i = 0; i < groups.size(); ++i) {
    const Json& g = groups.at(i);
    if (!g.is_object() || !g.get("id").is_number()) {
      return fail(error, "group " + std::to_string(i) +
                             ": object with numeric \"id\" required");
    }
    GroupSpec spec;
    spec.id = GroupId(static_cast<std::int32_t>(g.get("id").as_int()));
    spec.is_target = g.has("target") ? g.get("target").as_bool() : true;
    if (g.has("parent") && !g.get("parent").is_null()) {
      if (!g.get("parent").is_number()) {
        return fail(error, "group " + std::to_string(i) +
                               ": \"parent\" must be a group id or null");
      }
      spec.parent =
          GroupId(static_cast<std::int32_t>(g.get("parent").as_int()));
    }
    if (g.has("region")) {
      if (!g.get("region").is_string()) {
        return fail(error,
                    "group " + std::to_string(i) + ": non-string region");
      }
      spec.region = g.get("region").as_string();
    }
    const Json& reps = g.get("replicas");
    if (!reps.is_array()) {
      return fail(error, "group " + std::to_string(i) +
                             ": \"replicas\" must be an array");
    }
    for (std::size_t r = 0; r < reps.size(); ++r) {
      const Json& ep = reps.at(r);
      if (!ep.is_object() || !ep.get("host").is_string() ||
          !ep.get("port").is_number()) {
        return fail(error, "group " + std::to_string(i) + " replica " +
                               std::to_string(r) +
                               ": {host, port} required");
      }
      const std::int64_t port = ep.get("port").as_int();
      const std::int64_t introspect = ep.int_or("introspect_port", 0);
      if (port < 0 || port > 65535 || introspect < 0 || introspect > 65535) {
        return fail(error, "group " + std::to_string(i) + " replica " +
                               std::to_string(r) + ": port out of range");
      }
      spec.replicas.push_back(Endpoint{ep.get("host").as_string(),
                                       static_cast<std::uint16_t>(port),
                                       static_cast<std::uint16_t>(introspect)});
    }
    cfg->groups.push_back(std::move(spec));
  }
  return true;
}

bool parse_wan(const Json& j, ClusterConfig* cfg, std::string* error) {
  if (!j.has("wan")) return true;
  const Json& w = j.get("wan");
  if (!w.is_object()) return fail(error, "\"wan\" must be an object");
  WanModel wan;
  const Json& regions = w.get("regions");
  if (!regions.is_array() || regions.size() == 0) {
    return fail(error, "wan.regions must be a non-empty array");
  }
  for (std::size_t i = 0; i < regions.size(); ++i) {
    if (!regions.at(i).is_string()) {
      return fail(error, "wan.regions entries must be strings");
    }
    wan.regions.push_back(regions.at(i).as_string());
  }
  const Json& rtt = w.get("rtt_ms");
  if (!rtt.is_array() || rtt.size() != wan.regions.size()) {
    return fail(error, "wan.rtt_ms must be a regions x regions matrix");
  }
  for (std::size_t a = 0; a < rtt.size(); ++a) {
    const Json& row = rtt.at(a);
    if (!row.is_array() || row.size() != wan.regions.size()) {
      return fail(error, "wan.rtt_ms must be a regions x regions matrix");
    }
    std::vector<double> out_row;
    for (std::size_t b = 0; b < row.size(); ++b) {
      if (!row.at(b).is_number() || row.at(b).as_double() < 0) {
        return fail(error, "wan.rtt_ms entries must be numbers >= 0");
      }
      out_row.push_back(row.at(b).as_double());
    }
    wan.rtt_ms.push_back(std::move(out_row));
  }
  wan.intra_region_rtt_ms = w.num_or("intra_region_rtt_ms", 0.0);
  if (wan.intra_region_rtt_ms < 0) {
    return fail(error, "wan.intra_region_rtt_ms must be >= 0");
  }
  cfg->wan = std::move(wan);
  return true;
}

}  // namespace

std::optional<ClusterConfig> ClusterConfig::from_json(const Json& j,
                                                      std::string* error) {
  if (!j.is_object()) {
    fail(error, "config root must be an object");
    return std::nullopt;
  }
  ClusterConfig cfg;
  cfg.name = j.has("name") ? j.get("name").as_string() : "cluster";
  cfg.f = static_cast<int>(j.int_or("f", 1));
  if (cfg.f < 1) {
    fail(error, "\"f\" must be >= 1");
    return std::nullopt;
  }
  cfg.seed = static_cast<std::uint64_t>(j.int_or("seed", 42));

  const Json& proto = j.get("protocol");
  if (proto.is_object()) {
    cfg.pipeline_depth =
        static_cast<std::uint32_t>(proto.int_or("pipeline_depth", 4));
    cfg.batch_min = static_cast<std::uint32_t>(proto.int_or("batch_min", 1));
    cfg.batch_max =
        static_cast<std::uint32_t>(proto.int_or("batch_max", 400));
    cfg.batch_timeout = ms_to_ns(proto.num_or("batch_timeout_ms", 0.0));
    cfg.leader_timeout = ms_to_ns(proto.num_or("leader_timeout_ms", 2000.0));
    cfg.checkpoint_period =
        static_cast<std::uint32_t>(proto.int_or("checkpoint_period", 256));
    if (cfg.pipeline_depth < 1 || cfg.batch_min < 1 ||
        cfg.batch_max < cfg.batch_min) {
      fail(error, "protocol knobs out of range");
      return std::nullopt;
    }
  } else if (j.has("protocol")) {
    fail(error, "\"protocol\" must be an object");
    return std::nullopt;
  }

  const Json& tr = j.get("transport");
  if (tr.is_object()) {
    cfg.transport.max_frame_bytes = static_cast<std::size_t>(
        tr.int_or("max_frame_bytes",
                  static_cast<std::int64_t>(kDefaultMaxFrameBytes)));
    cfg.transport.send_queue_max_bytes = static_cast<std::size_t>(
        tr.int_or("send_queue_max_bytes", 8 * 1024 * 1024));
    cfg.transport.reconnect_backoff_min =
        ms_to_ns(tr.num_or("reconnect_backoff_min_ms", 50.0));
    cfg.transport.reconnect_backoff_max =
        ms_to_ns(tr.num_or("reconnect_backoff_max_ms", 2000.0));
    if (cfg.transport.max_frame_bytes < kFrameHeaderSize + kWireBodyMetaSize ||
        cfg.transport.reconnect_backoff_min <= 0 ||
        cfg.transport.reconnect_backoff_max <
            cfg.transport.reconnect_backoff_min) {
      fail(error, "transport knobs out of range");
      return std::nullopt;
    }
  } else if (j.has("transport")) {
    fail(error, "\"transport\" must be an object");
    return std::nullopt;
  }

  if (!parse_wan(j, &cfg, error)) return std::nullopt;
  if (j.has("client_region")) {
    if (!j.get("client_region").is_string()) {
      fail(error, "\"client_region\" must be a string");
      return std::nullopt;
    }
    cfg.client_region = j.get("client_region").as_string();
  }
  const std::int64_t client_introspect = j.int_or("client_introspect_port", 0);
  if (client_introspect < 0 || client_introspect > 65535) {
    fail(error, "\"client_introspect_port\" out of range");
    return std::nullopt;
  }
  cfg.client_introspect_port = static_cast<std::uint16_t>(client_introspect);
  if (!parse_groups(j, &cfg, error)) return std::nullopt;

  // --- structural validation (non-aborting; OverlayTree::finalize would
  // assert, so every precondition is checked here first) ------------------
  std::sort(cfg.groups.begin(), cfg.groups.end(),
            [](const GroupSpec& a, const GroupSpec& b) {
              return a.id.value < b.id.value;
            });
  std::set<std::int32_t> ids;
  int roots = 0;
  for (const GroupSpec& g : cfg.groups) {
    if (!ids.insert(g.id.value).second) {
      fail(error, "duplicate group id " + std::to_string(g.id.value));
      return std::nullopt;
    }
    if (!g.parent) ++roots;
    if (static_cast<int>(g.replicas.size()) != cfg.replicas_per_group()) {
      fail(error, "group " + std::to_string(g.id.value) + " has " +
                      std::to_string(g.replicas.size()) +
                      " replicas, need 3f+1 = " +
                      std::to_string(cfg.replicas_per_group()));
      return std::nullopt;
    }
  }
  if (roots != 1) {
    fail(error, "exactly one group must have parent=null (the tree root)");
    return std::nullopt;
  }
  bool any_target = false;
  for (const GroupSpec& g : cfg.groups) {
    any_target = any_target || g.is_target;
    if (g.parent) {
      if (!ids.contains(g.parent->value)) {
        fail(error, "group " + std::to_string(g.id.value) +
                        " has unknown parent " +
                        std::to_string(g.parent->value));
        return std::nullopt;
      }
      if (*g.parent == g.id) {
        fail(error,
             "group " + std::to_string(g.id.value) + " is its own parent");
        return std::nullopt;
      }
    }
    // Walk up; more steps than groups means a parent cycle.
    std::size_t steps = 0;
    const GroupSpec* cur = &g;
    while (cur->parent) {
      if (++steps > cfg.groups.size()) {
        fail(error, "parent cycle involving group " +
                        std::to_string(g.id.value));
        return std::nullopt;
      }
      cur = cfg.group(*cur->parent);
    }
    if (cfg.wan) {
      if (!cfg.region_index(g.region)) {
        fail(error, "group " + std::to_string(g.id.value) +
                        " region \"" + g.region +
                        "\" is not in wan.regions");
        return std::nullopt;
      }
    }
  }
  if (!any_target) {
    fail(error, "at least one group must be a target");
    return std::nullopt;
  }
  if (cfg.wan && !cfg.client_region.empty() &&
      !cfg.region_index(cfg.client_region)) {
    fail(error, "client_region \"" + cfg.client_region +
                    "\" is not in wan.regions");
    return std::nullopt;
  }
  return cfg;
}

std::optional<ClusterConfig> ClusterConfig::parse(const std::string& text,
                                                 std::string* error) {
  const auto j = Json::parse(text, error);
  if (!j) return std::nullopt;
  return from_json(*j, error);
}

std::optional<ClusterConfig> ClusterConfig::load_file(const std::string& path,
                                                      std::string* error) {
  std::ifstream in(path);
  if (!in) {
    fail(error, "cannot open " + path);
    return std::nullopt;
  }
  std::ostringstream text;
  text << in.rdbuf();
  return parse(text.str(), error);
}

Json ClusterConfig::to_json() const {
  Json j = Json::object();
  j.set("name", Json::string(name));
  j.set("f", Json::number(f));
  j.set("seed", Json::number(static_cast<double>(seed)));

  Json proto = Json::object();
  proto.set("pipeline_depth", Json::number(pipeline_depth));
  proto.set("batch_min", Json::number(batch_min));
  proto.set("batch_max", Json::number(batch_max));
  proto.set("batch_timeout_ms", Json::number(ns_to_ms(batch_timeout)));
  proto.set("leader_timeout_ms", Json::number(ns_to_ms(leader_timeout)));
  proto.set("checkpoint_period", Json::number(checkpoint_period));
  j.set("protocol", std::move(proto));

  Json tr = Json::object();
  tr.set("max_frame_bytes",
         Json::number(static_cast<double>(transport.max_frame_bytes)));
  tr.set("send_queue_max_bytes",
         Json::number(static_cast<double>(transport.send_queue_max_bytes)));
  tr.set("reconnect_backoff_min_ms",
         Json::number(ns_to_ms(transport.reconnect_backoff_min)));
  tr.set("reconnect_backoff_max_ms",
         Json::number(ns_to_ms(transport.reconnect_backoff_max)));
  j.set("transport", std::move(tr));

  if (wan) {
    Json w = Json::object();
    Json regions = Json::array();
    for (const std::string& r : wan->regions) {
      regions.push_back(Json::string(r));
    }
    w.set("regions", std::move(regions));
    Json rtt = Json::array();
    for (const auto& row : wan->rtt_ms) {
      Json out_row = Json::array();
      for (const double v : row) out_row.push_back(Json::number(v));
      rtt.push_back(std::move(out_row));
    }
    w.set("rtt_ms", std::move(rtt));
    w.set("intra_region_rtt_ms", Json::number(wan->intra_region_rtt_ms));
    j.set("wan", std::move(w));
  }
  if (!client_region.empty()) {
    j.set("client_region", Json::string(client_region));
  }
  if (client_introspect_port != 0) {
    j.set("client_introspect_port", Json::number(client_introspect_port));
  }

  Json groups_json = Json::array();
  for (const GroupSpec& g : groups) {
    Json gj = Json::object();
    gj.set("id", Json::number(g.id.value));
    gj.set("target", Json::boolean(g.is_target));
    gj.set("parent",
           g.parent ? Json::number(g.parent->value) : Json::null());
    if (!g.region.empty()) gj.set("region", Json::string(g.region));
    Json reps = Json::array();
    for (const Endpoint& ep : g.replicas) {
      Json e = Json::object();
      e.set("host", Json::string(ep.host));
      e.set("port", Json::number(ep.port));
      if (ep.introspect_port != 0) {
        e.set("introspect_port", Json::number(ep.introspect_port));
      }
      reps.push_back(std::move(e));
    }
    gj.set("replicas", std::move(reps));
    groups_json.push_back(std::move(gj));
  }
  j.set("groups", std::move(groups_json));
  return j;
}

ProcessId ClusterConfig::pid_of(GroupId g, int index) const {
  for (std::size_t i = 0; i < groups.size(); ++i) {
    if (groups[i].id == g) {
      return ProcessId(
          static_cast<std::int32_t>(i) * replicas_per_group() + index);
    }
  }
  return ProcessId();
}

std::optional<std::pair<GroupId, int>> ClusterConfig::replica_of(
    ProcessId pid) const {
  if (!pid.valid() || pid.value >= replica_count()) return std::nullopt;
  const int per = replicas_per_group();
  return std::make_pair(groups[static_cast<std::size_t>(pid.value / per)].id,
                        pid.value % per);
}

const GroupSpec* ClusterConfig::group(GroupId g) const {
  for (const GroupSpec& spec : groups) {
    if (spec.id == g) return &spec;
  }
  return nullptr;
}

const Endpoint* ClusterConfig::endpoint_of(ProcessId pid) const {
  const auto loc = replica_of(pid);
  if (!loc) return nullptr;
  return &group(loc->first)->replicas[static_cast<std::size_t>(loc->second)];
}

core::OverlayTree ClusterConfig::tree() const {
  core::OverlayTree t;
  for (const GroupSpec& g : groups) t.add_group(g.id, g.is_target);
  for (const GroupSpec& g : groups) {
    if (g.parent) t.set_parent(g.id, *g.parent);
  }
  t.finalize();
  return t;
}

sim::Profile ClusterConfig::profile() const {
  sim::Profile p = sim::Profile::wallclock();
  p.pipeline_depth = pipeline_depth;
  p.batch_min = batch_min;
  p.batch_max = batch_max;
  p.batch_timeout = batch_timeout;
  p.leader_timeout = leader_timeout;
  p.checkpoint_period = checkpoint_period;
  return p;
}

std::string ClusterConfig::region_of(ProcessId pid) const {
  const auto loc = replica_of(pid);
  if (!loc) return client_region;
  return group(loc->first)->region;
}

Time ClusterConfig::link_delay(const std::string& from_region,
                               ProcessId to) const {
  if (!wan) return 0;
  const auto a = region_index(from_region);
  const auto b = region_index(region_of(to));
  if (!a || !b) return 0;
  const double rtt =
      *a == *b ? wan->intra_region_rtt_ms : wan->rtt_ms[*a][*b];
  return ms_to_ns(rtt / 2.0);
}

std::optional<std::size_t> ClusterConfig::region_index(
    const std::string& region) const {
  if (!wan) return std::nullopt;
  for (std::size_t i = 0; i < wan->regions.size(); ++i) {
    if (wan->regions[i] == region) return i;
  }
  return std::nullopt;
}

bool operator==(const ClusterConfig& a, const ClusterConfig& b) {
  return a.to_json() == b.to_json();
}

}  // namespace byzcast::net
