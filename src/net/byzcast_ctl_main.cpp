// byzcast-ctl: operator tool for a live net-backend cluster. Talks to the
// per-daemon introspection servers (net/introspect.hpp) declared in a
// cluster config:
//
//   byzcast-ctl status --config FILE
//       One line of /healthz per process (view, decided instances,
//       deliveries, monitor violations).
//   byzcast-ctl scrape --config FILE --out DIR
//       Saves every process's raw endpoints: prom_<node>.txt,
//       spans_<node>.json, healthz_<node>.json.
//   byzcast-ctl merge --config FILE --out DIR
//       The collector proper (net/collector.hpp): estimates each daemon's
//       clock offset, drains /spans, aligns everything onto one timeline and
//       writes DIR/cluster_spans.json (merged byzcast-spans-v1 sidecar with
//       cross-process critical-path decomposition) and
//       DIR/cluster_trace.json (Perfetto / chrome://tracing).
//
// Exit status: 0 on success (merge additionally requires at least one
// scraped process), 1 on failure, 2 on usage errors.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "net/collector.hpp"
#include "net/config.hpp"

namespace {

using namespace byzcast;
using namespace byzcast::net;

int usage() {
  std::fprintf(stderr,
               "usage: byzcast-ctl <status|scrape|merge> --config FILE\n"
               "                   [--out DIR] [--clock-samples N]\n"
               "                   [--timeout-ms N]\n");
  return 2;
}

bool save(const std::string& path, const std::string& body,
          std::string* error) {
  std::ofstream out(path);
  out << body;
  if (!out.good()) {
    *error = "cannot write " + path;
    return false;
  }
  return true;
}

int cmd_status(const ClusterConfig& cfg, int timeout_ms) {
  bool all_ok = true;
  for (const ScrapeTarget& t : introspect_targets(cfg)) {
    std::string error;
    const auto body = http_get(t.host, t.port, "/healthz", timeout_ms, &error);
    const auto h = body ? Json::parse(*body, &error) : std::nullopt;
    if (!h) {
      std::printf("%-8s DOWN  %s\n", t.name.c_str(), error.c_str());
      all_ok = false;
      continue;
    }
    std::printf(
        "%-8s up    view=%lld decided=%lld open=%lld deliveries=%lld "
        "spans=%lld violations=%lld\n",
        t.name.c_str(), static_cast<long long>(h->int_or("view", -1)),
        static_cast<long long>(h->int_or("decided_instances", -1)),
        static_cast<long long>(h->int_or("open_instances", -1)),
        static_cast<long long>(h->int_or("deliveries", 0)),
        static_cast<long long>(h->int_or("spans_recorded", 0)),
        static_cast<long long>(
            h->get("monitor").int_or("violations_total", 0)));
  }
  return all_ok ? 0 : 1;
}

int cmd_scrape(const ClusterConfig& cfg, const std::string& out_dir,
               int timeout_ms) {
  std::size_t ok = 0;
  const auto targets = introspect_targets(cfg);
  for (const ScrapeTarget& t : targets) {
    std::string error;
    bool target_ok = true;
    const struct {
      const char* endpoint;
      std::string path;
    } pulls[] = {
        {"/metrics", out_dir + "/prom_" + t.name + ".txt"},
        {"/spans", out_dir + "/spans_" + t.name + ".json"},
        {"/healthz", out_dir + "/healthz_" + t.name + ".json"},
    };
    for (const auto& pull : pulls) {
      const auto body =
          http_get(t.host, t.port, pull.endpoint, timeout_ms, &error);
      if (!body || !save(pull.path, *body, &error)) {
        std::fprintf(stderr, "scrape %s%s: %s\n", t.name.c_str(),
                     pull.endpoint, error.c_str());
        target_ok = false;
        break;
      }
    }
    if (target_ok) ++ok;
  }
  std::printf("scraped %zu/%zu processes into %s\n", ok, targets.size(),
              out_dir.c_str());
  return ok > 0 ? 0 : 1;
}

int cmd_merge(const ClusterConfig& cfg, const std::string& out_dir,
              int clock_samples, int timeout_ms) {
  const MergeResult result =
      collect_and_merge(cfg, out_dir, clock_samples, timeout_ms);
  for (const NodeCapture& node : result.nodes) {
    if (node.ok) {
      std::printf("%-8s ok    offset=%lldns rtt=%lldns spans=%zu\n",
                  node.target.name.c_str(),
                  static_cast<long long>(node.clock.offset),
                  static_cast<long long>(node.clock.min_rtt),
                  node.raw.spans.size());
    } else {
      std::fprintf(stderr, "%-8s FAIL  %s\n", node.target.name.c_str(),
                   node.error.c_str());
    }
  }
  if (!result.ok) {
    std::fprintf(stderr, "merge failed: %s\n", result.error.c_str());
    return 1;
  }
  std::printf(
      "merged %zu spans from %zu/%zu processes: %zu traced messages "
      "(%zu complete), %llu dropped, %llu monitor violations\n",
      result.merged_spans, result.scraped_ok, result.nodes.size(),
      result.traced_messages, result.complete_messages,
      static_cast<unsigned long long>(result.spans_dropped),
      static_cast<unsigned long long>(result.monitor_violations));
  std::printf("wrote %s/cluster_spans.json and %s/cluster_trace.json\n",
              out_dir.c_str(), out_dir.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  std::string config_path;
  std::string out_dir = ".";
  int clock_samples = 7;
  int timeout_ms = 2000;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--config") {
      const char* v = value();
      if (v == nullptr) return usage();
      config_path = v;
    } else if (arg == "--out") {
      const char* v = value();
      if (v == nullptr) return usage();
      out_dir = v;
    } else if (arg == "--clock-samples") {
      const char* v = value();
      if (v == nullptr) return usage();
      clock_samples = std::atoi(v);
    } else if (arg == "--timeout-ms") {
      const char* v = value();
      if (v == nullptr) return usage();
      timeout_ms = std::atoi(v);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return usage();
    }
  }
  if (config_path.empty()) return usage();
  std::string error;
  const auto cfg = ClusterConfig::load_file(config_path, &error);
  if (!cfg) {
    std::fprintf(stderr, "config: %s\n", error.c_str());
    return 1;
  }
  if (cmd == "status") return cmd_status(*cfg, timeout_ms);
  if (cmd == "scrape") return cmd_scrape(*cfg, out_dir, timeout_ms);
  if (cmd == "merge") {
    return cmd_merge(*cfg, out_dir, clock_samples, timeout_ms);
  }
  return usage();
}
