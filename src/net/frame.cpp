#include "net/frame.hpp"

#include <cstring>

namespace byzcast::net {

namespace {

void put_u32(Bytes& out, std::uint32_t v) {
  const auto* b = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), b, b + sizeof v);
}

void put_i32(Bytes& out, std::int32_t v) {
  const auto* b = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), b, b + sizeof v);
}

/// Bounds-checked little-endian reads off untrusted bytes.
template <typename T>
bool get_raw(BytesView data, std::size_t& pos, T* out) {
  if (pos + sizeof(T) > data.size()) return false;
  std::memcpy(out, data.data() + pos, sizeof(T));
  pos += sizeof(T);
  return true;
}

void put_i64(Bytes& out, std::int64_t v) {
  const auto* b = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), b, b + sizeof v);
}

void append_header(Bytes& out, FrameType type, std::uint8_t flags,
                   std::uint32_t body_len) {
  out.insert(out.end(), kFrameMagic, kFrameMagic + 4);
  out.push_back(static_cast<std::uint8_t>(type));
  out.push_back(flags);
  out.push_back(0);  // reserved
  out.push_back(0);
  put_u32(out, body_len);
}

}  // namespace

std::vector<Buffer> encode_wire_frame(const sim::WireMessage& msg) {
  const bool carry_sent = msg.sent_at >= 0;
  const std::size_t meta_len = kWireBodyMetaSize + (carry_sent ? 8 : 0);
  const std::size_t body_len = meta_len + msg.payload.size();
  Bytes head;
  head.reserve(kFrameHeaderSize + meta_len);
  append_header(head, FrameType::kWireMessage,
                carry_sent ? kFlagSentAt : std::uint8_t{0},
                static_cast<std::uint32_t>(body_len));
  put_i32(head, msg.from.value);
  put_i32(head, msg.to.value);
  head.insert(head.end(), msg.mac.begin(), msg.mac.end());
  if (carry_sent) put_i64(head, msg.sent_at);
  std::vector<Buffer> chunks;
  chunks.reserve(2);
  chunks.emplace_back(std::move(head));
  if (!msg.payload.empty()) chunks.push_back(msg.payload);
  return chunks;
}

Buffer encode_hello_frame(const std::vector<ProcessId>& pids) {
  Bytes out;
  out.reserve(kFrameHeaderSize + 4 + pids.size() * 4);
  append_header(out, FrameType::kHello, 0,
                static_cast<std::uint32_t>(4 + pids.size() * 4));
  put_u32(out, static_cast<std::uint32_t>(pids.size()));
  for (const ProcessId p : pids) put_i32(out, p.value);
  return Buffer(std::move(out));
}

Buffer encode_clock_ping_frame(Time t0) {
  Bytes out;
  out.reserve(kFrameHeaderSize + 8);
  append_header(out, FrameType::kClockPing, 0, 8);
  put_i64(out, t0);
  return Buffer(std::move(out));
}

Buffer encode_clock_pong_frame(Time t0, Time t_peer) {
  Bytes out;
  out.reserve(kFrameHeaderSize + 16);
  append_header(out, FrameType::kClockPong, 0, 16);
  put_i64(out, t0);
  put_i64(out, t_peer);
  return Buffer(std::move(out));
}

std::optional<sim::WireMessage> decode_wire_body(BytesView body,
                                                 std::uint8_t flags) {
  std::size_t pos = 0;
  sim::WireMessage msg;
  std::int32_t from = 0;
  std::int32_t to = 0;
  if (!get_raw(body, pos, &from) || !get_raw(body, pos, &to)) {
    return std::nullopt;
  }
  if (pos + msg.mac.size() > body.size()) return std::nullopt;
  std::memcpy(msg.mac.data(), body.data() + pos, msg.mac.size());
  pos += msg.mac.size();
  if ((flags & kFlagSentAt) != 0) {
    std::int64_t sent = 0;
    if (!get_raw(body, pos, &sent) || sent < 0) return std::nullopt;
    msg.sent_at = sent;
  }
  msg.from = ProcessId{from};
  msg.to = ProcessId{to};
  msg.payload = Buffer::copy_of(
      BytesView(body.data() + pos, body.size() - pos));
  return msg;
}

std::optional<ClockPing> decode_clock_ping_body(BytesView body) {
  std::size_t pos = 0;
  ClockPing ping;
  if (!get_raw(body, pos, &ping.t0) || body.size() != 8) return std::nullopt;
  return ping;
}

std::optional<ClockPong> decode_clock_pong_body(BytesView body) {
  std::size_t pos = 0;
  ClockPong pong;
  if (!get_raw(body, pos, &pong.t0) || !get_raw(body, pos, &pong.t_peer) ||
      body.size() != 16) {
    return std::nullopt;
  }
  return pong;
}

std::optional<std::vector<ProcessId>> decode_hello_body(BytesView body) {
  std::size_t pos = 0;
  std::uint32_t count = 0;
  if (!get_raw(body, pos, &count)) return std::nullopt;
  // The exact body length is known from the count; a mismatch means the
  // frame was corrupted or forged.
  if (body.size() != 4 + static_cast<std::size_t>(count) * 4) {
    return std::nullopt;
  }
  std::vector<ProcessId> pids;
  pids.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::int32_t v = 0;
    if (!get_raw(body, pos, &v)) return std::nullopt;
    pids.push_back(ProcessId{v});
  }
  return pids;
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t n) {
  if (error_ != Error::kNone) return;
  // Reclaim consumed prefix before growing (bounded memory under streaming).
  if (pos_ > 0 && (pos_ >= buf_.size() || pos_ > 64 * 1024)) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

std::optional<DecodedFrame> FrameDecoder::next() {
  if (error_ != Error::kNone) return std::nullopt;
  if (buf_.size() - pos_ < kFrameHeaderSize) return std::nullopt;
  const std::uint8_t* h = buf_.data() + pos_;
  if (std::memcmp(h, kFrameMagic, 4) != 0) {
    error_ = Error::kBadMagic;
    return std::nullopt;
  }
  const std::uint8_t type = h[4];
  const bool known_type =
      type >= static_cast<std::uint8_t>(FrameType::kHello) &&
      type <= static_cast<std::uint8_t>(FrameType::kClockPong);
  // Flags: only kFlagSentAt is defined, and only on wire messages. Unknown
  // bits mean a protocol we do not speak — poison rather than misparse.
  const std::uint8_t allowed_flags =
      type == static_cast<std::uint8_t>(FrameType::kWireMessage) ? kFlagSentAt
                                                                 : 0;
  if (!known_type || (h[5] & ~allowed_flags) != 0 || h[6] != 0 || h[7] != 0) {
    error_ = Error::kBadType;
    return std::nullopt;
  }
  std::uint32_t length = 0;
  std::memcpy(&length, h + 8, sizeof length);
  if (length > max_frame_) {
    error_ = Error::kOversized;
    return std::nullopt;
  }
  if (buf_.size() - pos_ < kFrameHeaderSize + length) return std::nullopt;
  DecodedFrame frame;
  frame.type = static_cast<FrameType>(type);
  frame.flags = h[5];
  frame.body.assign(h + kFrameHeaderSize, h + kFrameHeaderSize + length);
  pos_ += kFrameHeaderSize + length;
  return frame;
}

const char* to_string(FrameDecoder::Error e) {
  switch (e) {
    case FrameDecoder::Error::kNone: return "none";
    case FrameDecoder::Error::kBadMagic: return "bad_magic";
    case FrameDecoder::Error::kBadType: return "bad_type";
    case FrameDecoder::Error::kOversized: return "oversized";
  }
  return "unknown";
}

}  // namespace byzcast::net
