#include "net/cluster.hpp"

#include <cstdlib>
#include <unordered_set>
#include <utility>

#include "common/contracts.hpp"
#include "common/prom.hpp"
#include "net/collector.hpp"
#include "net/dump.hpp"

namespace byzcast::net {

ClusterNode::ClusterNode(ClusterConfig cfg, std::optional<NodeIdentity> self)
    : cfg_(std::move(cfg)), self_(self) {
  NetEnvOptions opts;
  opts.seed = cfg_.seed;
  opts.profile = cfg_.profile();
  opts.transport = cfg_.transport;
  env_ = std::make_unique<NetEnv>(opts);

  std::unordered_set<std::int32_t> local;
  if (self_) {
    self_pid_ = cfg_.pid_of(self_->group, self_->replica);
    local.insert(self_pid_.value);
  }
  env_->set_local_pids(std::move(local), cfg_.replica_count());

  monitors_.attach_metrics(&metrics_);
  Observability obs;
  obs.metrics = &metrics_;
  obs.monitors = &monitors_;
  obs.spans = &spans_;
  system_ = std::make_unique<core::ByzCastSystem>(*env_, cfg_.tree(),
                                                  cfg_.f, core::FaultPlan{},
                                                  core::Routing::kGenuine,
                                                  obs);

  // The whole scheme rests on positional pid assignment matching the
  // config's arithmetic; verify it outright rather than trusting it.
  for (const GroupSpec& g : cfg_.groups) {
    for (int i = 0; i < cfg_.replicas_per_group(); ++i) {
      BZC_ENSURES(system_->group(g.id).replica(i).id() ==
                  cfg_.pid_of(g.id, i));
    }
  }
}

ClusterNode::~ClusterNode() { stop(); }

bool ClusterNode::listen(std::string* error, bool ephemeral) {
  BZC_EXPECTS(self_.has_value());
  const Endpoint* ep = cfg_.endpoint_of(self_pid_);
  return env_->transport().listen(ep->host, ephemeral ? 0 : ep->port, error);
}

core::Client& ClusterNode::add_client(const std::string& name) {
  clients_.push_back(system_->make_client(name));
  return *clients_.back();
}

void ClusterNode::connect(const ClusterConfig& resolved) {
  Transport& tr = env_->transport();

  std::vector<ProcessId> hello;
  if (self_) hello.push_back(self_pid_);
  for (const auto& c : clients_) hello.push_back(c->id());
  tr.set_local_pids(std::move(hello));

  for (const GroupSpec& g : resolved.groups) {
    for (int i = 0; i < resolved.replicas_per_group(); ++i) {
      const ProcessId pid = resolved.pid_of(g.id, i);
      if (env_->is_local(pid)) continue;
      const Endpoint& ep = g.replicas[static_cast<std::size_t>(i)];
      tr.add_peer(ep.host, ep.port, {pid});
    }
  }
  if (resolved.wan) {
    const std::string region = self_
                                   ? resolved.group(self_->group)->region
                                   : resolved.client_region;
    tr.set_delay_fn([cfg = resolved, region](ProcessId to) {
      return cfg.link_delay(region, to);
    });
  }
  tr.connect_all();
}

std::string ClusterNode::node_name() const {
  if (!self_) return "client";
  return "g" + std::to_string(self_->group.value) + "_r" +
         std::to_string(self_->replica);
}

void ClusterNode::refresh_net_metrics() {
  const auto set = [this](const std::string& name, double v) {
    metrics_.gauge(name).set(v);
  };
  const Transport::Stats ts = env_->transport().stats();
  set("net.transport.messages_sent", static_cast<double>(ts.messages_sent));
  set("net.transport.messages_received",
      static_cast<double>(ts.messages_received));
  set("net.transport.bytes_sent", static_cast<double>(ts.bytes_sent));
  set("net.transport.bytes_received",
      static_cast<double>(ts.bytes_received));
  set("net.transport.dropped_no_route",
      static_cast<double>(ts.dropped_no_route));
  set("net.transport.dropped_queue_full",
      static_cast<double>(ts.dropped_queue_full));
  set("net.transport.dropped_decode", static_cast<double>(ts.dropped_decode));
  set("net.transport.connect_attempts",
      static_cast<double>(ts.connect_attempts));
  set("net.transport.reconnects", static_cast<double>(ts.reconnects));
  set("net.transport.inbound_accepted",
      static_cast<double>(ts.inbound_accepted));
  set("net.transport.inbound_resets", static_cast<double>(ts.inbound_resets));
  set("net.transport.send_queue_high_water",
      static_cast<double>(ts.send_queue_high_water));
  set("net.transport.clock_pings_sent",
      static_cast<double>(ts.clock_pings_sent));
  set("net.transport.clock_pongs_received",
      static_cast<double>(ts.clock_pongs_received));
  set("net.transport.all_peers_connected",
      env_->transport().all_peers_connected() ? 1.0 : 0.0);

  const NetEnv::Stats es = env_->stats();
  set("net.env.local_deliveries", static_cast<double>(es.local_deliveries));
  set("net.env.remote_sends", static_cast<double>(es.remote_sends));
  set("net.env.ghost_send_drops", static_cast<double>(es.ghost_send_drops));
  set("net.env.no_actor_drops", static_cast<double>(es.no_actor_drops));

  set("net.spans.recorded", static_cast<double>(spans_.spans().size()));
  set("net.spans.dropped", static_cast<double>(spans_.dropped()));

  // Per-link clock sync (the transport-level half of the cross-process
  // timeline): one gauge triple per live connection with >= 1 sample.
  for (const Transport::LinkClock& lc : env_->transport().link_clocks()) {
    if (!lc.pid.valid() || lc.samples == 0) continue;
    const std::string link =
        std::string(lc.outbound ? ".out.p" : ".in.p") +
        std::to_string(lc.pid.value);
    set("net.clock.offset_ns" + link, static_cast<double>(lc.offset));
    set("net.clock.min_rtt_ns" + link, static_cast<double>(lc.min_rtt));
    set("net.clock.samples" + link, static_cast<double>(lc.samples));
  }

  // Configured WAN one-way delays from this process towards each group.
  if (cfg_.wan) {
    const std::string region =
        self_ ? cfg_.group(self_->group)->region : cfg_.client_region;
    for (const GroupSpec& g : cfg_.groups) {
      set("net.wan.link_delay_ns.g" + std::to_string(g.id.value),
          static_cast<double>(cfg_.link_delay(region, cfg_.pid_of(g.id, 0))));
    }
  }
}

Json ClusterNode::healthz_json() {
  Json h = Json::object();
  h.set("schema", Json::string("byzcast-healthz-v1"));
  h.set("node", Json::string(node_name()));
  h.set("now_ns", Json::number(env_->now()));
  h.set("is_replica", Json::boolean(self_.has_value()));
  if (self_) {
    const bft::Replica& r =
        system_->group(self_->group).replica(self_->replica);
    h.set("view", Json::number(r.view()));
    h.set("decided_instances", Json::number(r.decided_instances()));
    h.set("open_instances", Json::number(r.open_instances()));
    h.set("executed_requests", Json::number(r.executed_requests()));
    h.set("max_decided_batch", Json::number(r.max_decided_batch()));
  }
  const auto& records = system_->delivery_log().records();
  h.set("deliveries", Json::number(records.size()));
  h.set("last_delivery_ns",
        Json::number(records.empty() ? -1 : records.back().when));
  std::uint64_t completed = 0;
  for (const auto& c : clients_) completed += c->completed();
  h.set("client_completed", Json::number(completed));
  h.set("spans_recorded", Json::number(spans_.spans().size()));
  h.set("spans_dropped", Json::number(spans_.dropped()));

  Json mon = Json::object();
  mon.set("violations_total", Json::number(monitors_.total_violations()));
  mon.set("fifo", Json::number(monitors_.violations("fifo")));
  mon.set("group_agreement",
          Json::number(monitors_.violations("group_agreement")));
  mon.set("acyclic_order", Json::number(monitors_.violations("acyclic_order")));
  mon.set("bounded_pending",
          Json::number(monitors_.violations("bounded_pending")));
  h.set("monitor", std::move(mon));

  const Transport::Stats ts = env_->transport().stats();
  Json tr = Json::object();
  tr.set("messages_sent", Json::number(ts.messages_sent));
  tr.set("messages_received", Json::number(ts.messages_received));
  tr.set("dropped_no_route", Json::number(ts.dropped_no_route));
  tr.set("dropped_queue_full", Json::number(ts.dropped_queue_full));
  tr.set("reconnects", Json::number(ts.reconnects));
  tr.set("all_peers_connected",
         Json::boolean(env_->transport().all_peers_connected()));
  h.set("transport", std::move(tr));
  return h;
}

bool ClusterNode::start_introspect(std::uint16_t port, std::string* error) {
  introspect_ = std::make_unique<IntrospectServer>(env_->loop());
  IntrospectServer& srv = *introspect_;
  srv.handle("/metrics", [this](const std::string&) {
    refresh_net_metrics();
    IntrospectServer::Response r;
    r.content_type = "text/plain; version=0.0.4; charset=utf-8";
    r.body = prometheus_text(metrics_, {{"node", node_name()}});
    return r;
  });
  srv.handle("/healthz", [this](const std::string&) {
    IntrospectServer::Response r;
    r.content_type = "application/json";
    r.body = healthz_json().dump();
    return r;
  });
  srv.handle("/spans", [this](const std::string& query) {
    std::size_t from = 0;
    const auto q = parse_query(query);
    if (const auto it = q.find("from"); it != q.end()) {
      from = static_cast<std::size_t>(
          std::strtoull(it->second.c_str(), nullptr, 10));
    }
    IntrospectServer::Response r;
    r.content_type = "application/json";
    r.body = raw_spans_json(spans_, node_name(), env_->now(), from).dump();
    return r;
  });
  srv.handle("/dump", [this](const std::string&) {
    DeliveryDump dump;
    dump.node = node_name();
    dump.monitor_violations = monitors_.total_violations();
    dump.records = system_->delivery_log().records();
    IntrospectServer::Response r;
    r.content_type = "application/json";
    r.body = delivery_dump_to_json(dump).dump();
    return r;
  });
  srv.handle("/clock", [this](const std::string& query) {
    const auto q = parse_query(query);
    std::int64_t t0 = -1;
    if (const auto it = q.find("t0"); it != q.end()) {
      t0 = std::strtoll(it->second.c_str(), nullptr, 10);
    }
    Json j = Json::object();
    j.set("node", Json::string(node_name()));
    j.set("t0", Json::number(t0));
    j.set("now_ns", Json::number(env_->now()));
    IntrospectServer::Response r;
    r.content_type = "application/json";
    r.body = j.dump();
    return r;
  });
  const Endpoint* ep = self_ ? cfg_.endpoint_of(self_pid_) : nullptr;
  if (!srv.listen(ep ? ep->host : "localhost", port, error)) {
    introspect_.reset();
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------

InProcessCluster::InProcessCluster(ClusterConfig cfg)
    : resolved_(std::move(cfg)) {
  for (GroupSpec& g : resolved_.groups) {
    for (int i = 0; i < resolved_.replicas_per_group(); ++i) {
      auto node = std::make_unique<ClusterNode>(
          resolved_, NodeIdentity{g.id, i});
      std::string error;
      BZC_ENSURES(node->listen(&error, /*ephemeral=*/true));
      BZC_ENSURES(node->start_introspect(0, &error));
      // Fold the actual ports back into the config everyone will dial
      // (and the collector scrape) with.
      g.replicas[static_cast<std::size_t>(i)].port = node->listen_port();
      g.replicas[static_cast<std::size_t>(i)].introspect_port =
          node->introspect_port();
      replica_nodes_.push_back(std::move(node));
    }
  }
  client_node_ = std::make_unique<ClusterNode>(resolved_, std::nullopt);
  std::string error;
  BZC_ENSURES(client_node_->start_introspect(0, &error));
  resolved_.client_introspect_port = client_node_->introspect_port();
}

InProcessCluster::~InProcessCluster() { stop(); }

void InProcessCluster::start() {
  if (started_) return;
  started_ = true;
  for (auto& node : replica_nodes_) node->connect(resolved_);
  client_node_->connect(resolved_);
  for (auto& node : replica_nodes_) node->start();
  client_node_->start();
}

void InProcessCluster::stop() {
  // Client first so no new load flows while replicas drain their loops.
  if (client_node_) client_node_->stop();
  for (auto& node : replica_nodes_) node->stop();
}

std::size_t InProcessCluster::node_index(GroupId g, int replica) const {
  const ProcessId pid = resolved_.pid_of(g, replica);
  BZC_EXPECTS(pid.valid());
  return static_cast<std::size_t>(pid.value);
}

ClusterNode& InProcessCluster::replica_node(GroupId g, int replica) {
  return *replica_nodes_[node_index(g, replica)];
}

void InProcessCluster::kill_replica(GroupId g, int replica) {
  ClusterNode& node = replica_node(g, replica);
  node.stop();
  // The loop is dead; its thread is joined, so tearing the sockets down
  // from this thread is race-free. Peers observe resets and enter their
  // reconnect backoff against a port nobody listens on anymore.
  node.env().transport().shutdown();
  // A dead daemon must scrape like one: connection refused, not a hang.
  if (node.introspect() != nullptr) node.introspect()->shutdown();
  killed_.insert({g.value, replica});
}

std::uint64_t InProcessCluster::total_deliveries() const {
  std::uint64_t total = 0;
  for (const auto& node : replica_nodes_) {
    if (node->self() &&
        killed_.contains({node->self()->group.value, node->self()->replica}))
      continue;
    total += node->system().delivery_log().total_deliveries();
  }
  return total;
}

std::uint64_t InProcessCluster::total_monitor_violations() const {
  std::uint64_t total = 0;
  for (const auto& node : replica_nodes_) {
    total += node->monitors().total_violations();
  }
  return total;
}

core::PropertyResult InProcessCluster::check_properties(
    const std::vector<core::SentMessage>& sent) const {
  // Merge per-node logs. Each node's log holds exactly its own replica's
  // records (ghosts never deliver), so concatenation preserves every
  // per-replica delivery order — the only order the checkers consume.
  core::DeliveryLog merged;
  for (const auto& node : replica_nodes_) {
    for (const auto& rec : node->system().delivery_log().records()) {
      merged.record(rec.group, rec.replica, rec.msg, rec.when);
    }
  }
  core::PropertyInput in;
  in.log = &merged;
  in.sent = sent;
  for (const GroupSpec& g : resolved_.groups) {
    if (!g.is_target) continue;
    for (int i = 0; i < resolved_.replicas_per_group(); ++i) {
      if (killed_.contains({g.id.value, i})) continue;
      in.correct_replicas[g.id].push_back(resolved_.pid_of(g.id, i));
    }
  }
  return core::check_all_properties(in);
}

}  // namespace byzcast::net
