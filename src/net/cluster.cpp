#include "net/cluster.hpp"

#include <unordered_set>
#include <utility>

#include "common/contracts.hpp"

namespace byzcast::net {

ClusterNode::ClusterNode(ClusterConfig cfg, std::optional<NodeIdentity> self)
    : cfg_(std::move(cfg)), self_(self) {
  NetEnvOptions opts;
  opts.seed = cfg_.seed;
  opts.profile = cfg_.profile();
  opts.transport = cfg_.transport;
  env_ = std::make_unique<NetEnv>(opts);

  std::unordered_set<std::int32_t> local;
  if (self_) {
    self_pid_ = cfg_.pid_of(self_->group, self_->replica);
    local.insert(self_pid_.value);
  }
  env_->set_local_pids(std::move(local), cfg_.replica_count());

  monitors_.attach_metrics(&metrics_);
  Observability obs;
  obs.metrics = &metrics_;
  obs.monitors = &monitors_;
  system_ = std::make_unique<core::ByzCastSystem>(*env_, cfg_.tree(),
                                                  cfg_.f, core::FaultPlan{},
                                                  core::Routing::kGenuine,
                                                  obs);

  // The whole scheme rests on positional pid assignment matching the
  // config's arithmetic; verify it outright rather than trusting it.
  for (const GroupSpec& g : cfg_.groups) {
    for (int i = 0; i < cfg_.replicas_per_group(); ++i) {
      BZC_ENSURES(system_->group(g.id).replica(i).id() ==
                  cfg_.pid_of(g.id, i));
    }
  }
}

ClusterNode::~ClusterNode() { stop(); }

bool ClusterNode::listen(std::string* error, bool ephemeral) {
  BZC_EXPECTS(self_.has_value());
  const Endpoint* ep = cfg_.endpoint_of(self_pid_);
  return env_->transport().listen(ep->host, ephemeral ? 0 : ep->port, error);
}

core::Client& ClusterNode::add_client(const std::string& name) {
  clients_.push_back(system_->make_client(name));
  return *clients_.back();
}

void ClusterNode::connect(const ClusterConfig& resolved) {
  Transport& tr = env_->transport();

  std::vector<ProcessId> hello;
  if (self_) hello.push_back(self_pid_);
  for (const auto& c : clients_) hello.push_back(c->id());
  tr.set_local_pids(std::move(hello));

  for (const GroupSpec& g : resolved.groups) {
    for (int i = 0; i < resolved.replicas_per_group(); ++i) {
      const ProcessId pid = resolved.pid_of(g.id, i);
      if (env_->is_local(pid)) continue;
      const Endpoint& ep = g.replicas[static_cast<std::size_t>(i)];
      tr.add_peer(ep.host, ep.port, {pid});
    }
  }
  if (resolved.wan) {
    const std::string region = self_
                                   ? resolved.group(self_->group)->region
                                   : resolved.client_region;
    tr.set_delay_fn([cfg = resolved, region](ProcessId to) {
      return cfg.link_delay(region, to);
    });
  }
  tr.connect_all();
}

std::string ClusterNode::node_name() const {
  if (!self_) return "client";
  return "g" + std::to_string(self_->group.value) + "_r" +
         std::to_string(self_->replica);
}

// ---------------------------------------------------------------------------

InProcessCluster::InProcessCluster(ClusterConfig cfg)
    : resolved_(std::move(cfg)) {
  for (GroupSpec& g : resolved_.groups) {
    for (int i = 0; i < resolved_.replicas_per_group(); ++i) {
      auto node = std::make_unique<ClusterNode>(
          resolved_, NodeIdentity{g.id, i});
      std::string error;
      BZC_ENSURES(node->listen(&error, /*ephemeral=*/true));
      // Fold the actual port back into the config everyone will dial with.
      g.replicas[static_cast<std::size_t>(i)].port = node->listen_port();
      replica_nodes_.push_back(std::move(node));
    }
  }
  client_node_ = std::make_unique<ClusterNode>(resolved_, std::nullopt);
}

InProcessCluster::~InProcessCluster() { stop(); }

void InProcessCluster::start() {
  if (started_) return;
  started_ = true;
  for (auto& node : replica_nodes_) node->connect(resolved_);
  client_node_->connect(resolved_);
  for (auto& node : replica_nodes_) node->start();
  client_node_->start();
}

void InProcessCluster::stop() {
  // Client first so no new load flows while replicas drain their loops.
  if (client_node_) client_node_->stop();
  for (auto& node : replica_nodes_) node->stop();
}

std::size_t InProcessCluster::node_index(GroupId g, int replica) const {
  const ProcessId pid = resolved_.pid_of(g, replica);
  BZC_EXPECTS(pid.valid());
  return static_cast<std::size_t>(pid.value);
}

ClusterNode& InProcessCluster::replica_node(GroupId g, int replica) {
  return *replica_nodes_[node_index(g, replica)];
}

void InProcessCluster::kill_replica(GroupId g, int replica) {
  ClusterNode& node = replica_node(g, replica);
  node.stop();
  // The loop is dead; its thread is joined, so tearing the sockets down
  // from this thread is race-free. Peers observe resets and enter their
  // reconnect backoff against a port nobody listens on anymore.
  node.env().transport().shutdown();
  killed_.insert({g.value, replica});
}

std::uint64_t InProcessCluster::total_deliveries() const {
  std::uint64_t total = 0;
  for (const auto& node : replica_nodes_) {
    if (node->self() &&
        killed_.contains({node->self()->group.value, node->self()->replica}))
      continue;
    total += node->system().delivery_log().total_deliveries();
  }
  return total;
}

std::uint64_t InProcessCluster::total_monitor_violations() const {
  std::uint64_t total = 0;
  for (const auto& node : replica_nodes_) {
    total += node->monitors().total_violations();
  }
  return total;
}

core::PropertyResult InProcessCluster::check_properties(
    const std::vector<core::SentMessage>& sent) const {
  // Merge per-node logs. Each node's log holds exactly its own replica's
  // records (ghosts never deliver), so concatenation preserves every
  // per-replica delivery order — the only order the checkers consume.
  core::DeliveryLog merged;
  for (const auto& node : replica_nodes_) {
    for (const auto& rec : node->system().delivery_log().records()) {
      merged.record(rec.group, rec.replica, rec.msg, rec.when);
    }
  }
  core::PropertyInput in;
  in.log = &merged;
  in.sent = sent;
  for (const GroupSpec& g : resolved_.groups) {
    if (!g.is_target) continue;
    for (int i = 0; i < resolved_.replicas_per_group(); ++i) {
      if (killed_.contains({g.id.value, i})) continue;
      in.correct_replicas[g.id].push_back(resolved_.pid_of(g.id, i));
    }
  }
  return core::check_all_properties(in);
}

}  // namespace byzcast::net
