// The paper's Baseline protocol (§V-A3): a non-genuine 2-level atomic
// multicast in which one auxiliary group orders *every* message, local or
// global, and then relays it to the destination target groups; target
// replicas act once they receive f+1 copies from the auxiliary group.
//
// Structurally this is ByzCast over a 2-level tree with Routing::kViaRoot,
// so the wrapper below is a thin configuration of the core machinery — the
// protocols share quorums, relays and reply rules exactly as they do in the
// authors' prototype (both built on BFT-SMaRt).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/system.hpp"

namespace byzcast::baseline {

class BaselineSystem {
 public:
  /// One auxiliary root `aux_root` ordering all traffic for `targets`.
  BaselineSystem(sim::ExecutionEnv& env, const std::vector<GroupId>& targets,
                 GroupId aux_root, int f,
                 const core::FaultPlan& faults = {}, Observability obs = {})
      : system_(env, core::OverlayTree::two_level(targets, aux_root), f,
                faults, core::Routing::kViaRoot, obs) {}

  [[nodiscard]] core::ByzCastSystem& system() { return system_; }
  [[nodiscard]] const core::OverlayTree& tree() const {
    return system_.tree();
  }
  [[nodiscard]] core::DeliveryLog& delivery_log() {
    return system_.delivery_log();
  }
  [[nodiscard]] bft::Group& group(GroupId g) { return system_.group(g); }

  /// Baseline clients send everything to the root group.
  [[nodiscard]] std::unique_ptr<core::Client> make_client(
      const std::string& name) {
    return system_.make_client(name);
  }

 private:
  core::ByzCastSystem system_;
};

}  // namespace byzcast::baseline
