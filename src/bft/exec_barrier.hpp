// ExecBarrier: the per-origin FIFO barrier of the execute/reply stage.
//
// Once the order stage fixes delivery order, deferred per-request work fans
// out to exec shards keyed by destination key — but §II-B's FIFO property
// says replies for one origin must leave in the order their requests were
// delivered, and shards finish in whatever order real CPUs allow (shard A
// may finish batch n+1's request before shard B finishes batch n's). The
// barrier restores the order: the order stage opens one ticket per deferred
// request, in delivery order; shards complete tickets whenever they finish,
// attaching the sends their work produced; completions release strictly in
// ticket order per origin. Releases run under the barrier lock, so the
// release callback observes a total order consistent with every origin's
// ticket order.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/buffer.hpp"
#include "common/types.hpp"

namespace byzcast::bft {

class ExecBarrier {
 public:
  /// One (destination, encoded payload) send produced behind a ticket.
  using PendingSend = std::pair<ProcessId, Buffer>;
  using Release = std::function<void(ProcessId to, Buffer payload)>;

  explicit ExecBarrier(Release release) : release_(std::move(release)) {}

  /// Order stage: claims the next ticket for `origin`. Tickets are released
  /// in exactly the order they were opened.
  [[nodiscard]] std::uint64_t open(ProcessId origin) {
    std::lock_guard<std::mutex> lock(mu_);
    ++opened_;
    return streams_[origin].next_open++;
  }

  /// Any thread: marks `ticket` done with the sends its work produced, then
  /// releases every now-consecutive completed ticket of this origin.
  void complete(ProcessId origin, std::uint64_t ticket,
                std::vector<PendingSend> sends) {
    std::lock_guard<std::mutex> lock(mu_);
    Stream& st = streams_[origin];
    if (ticket != st.next_release) ++reordered_;  // finished out of order
    st.done.emplace(ticket, std::move(sends));
    auto it = st.done.find(st.next_release);
    while (it != st.done.end()) {
      for (auto& [to, payload] : it->second) release_(to, std::move(payload));
      st.done.erase(it);
      ++released_;
      it = st.done.find(++st.next_release);
    }
  }

  /// Completions that arrived while an earlier ticket of the same origin was
  /// still outstanding — the adversarial interleaving the barrier exists for.
  [[nodiscard]] std::uint64_t reordered() const {
    std::lock_guard<std::mutex> lock(mu_);
    return reordered_;
  }

  /// True when every opened ticket has been released (drain check).
  [[nodiscard]] bool idle() const {
    std::lock_guard<std::mutex> lock(mu_);
    return released_ == opened_;
  }

 private:
  struct Stream {
    std::uint64_t next_open = 0;
    std::uint64_t next_release = 0;
    std::map<std::uint64_t, std::vector<PendingSend>> done;
  };

  Release release_;
  mutable std::mutex mu_;
  std::unordered_map<ProcessId, Stream> streams_;
  std::uint64_t opened_ = 0;
  std::uint64_t released_ = 0;
  std::uint64_t reordered_ = 0;
};

}  // namespace byzcast::bft
