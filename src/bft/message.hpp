// Wire message types of the per-group FIFO BFT atomic broadcast (Mod-SMaRt
// style): client requests, the PROPOSE/WRITE/ACCEPT consensus pattern,
// replies, the synchronization phase (STOP/STOPDATA/SYNC) and state
// transfer. Each type encodes/decodes through the common binary codec; the
// first payload byte is the type tag.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/buffer.hpp"
#include "common/bytes.hpp"
#include "common/serde.hpp"
#include "common/sha256.hpp"
#include "common/types.hpp"

namespace byzcast::bft {

enum class MsgType : std::uint8_t {
  kRequest = 1,
  kPropose,
  kWrite,
  kAccept,
  kReply,
  kStop,
  kStopData,
  kSync,
  kStateRequest,
  kStateResponse,
  kFrontier,
  kReplyBatch,
};

/// Peeks the type tag of an encoded bft message.
[[nodiscard]] MsgType peek_type(BytesView payload);

/// A totally-ordered unit: `origin`'s `seq`-th operation, addressed to the
/// broadcast of group `group`. (origin, seq) identifies the request for
/// deduplication and FIFO delivery.
struct Request {
  GroupId group;
  ProcessId origin;
  std::uint64_t seq = 0;
  /// Administrative membership change (op = encoded membership); admitted
  /// only from the group's configured administrator and executed by the
  /// replica itself rather than the application.
  bool reconfig = false;
  /// Ref-counted payload: copying a Request into a batch (or re-proposing it
  /// after a view change) bumps a refcount instead of deep-copying the
  /// operation bytes.
  Buffer op;

  [[nodiscard]] MessageId id() const { return MessageId{origin, seq}; }

  void encode(Writer& w) const;
  [[nodiscard]] static Request decode(Reader& r);

  friend bool operator==(const Request&, const Request&) = default;
};

using Batch = std::vector<Request>;

/// Digest of an encoded batch (consensus agrees on this value).
[[nodiscard]] Digest batch_digest(const Batch& batch);
[[nodiscard]] Bytes encode_batch(const Batch& batch);
[[nodiscard]] Batch decode_batch(Reader& r);

/// Byte offset of the encoded batch inside an encoded PROPOSE:
/// [tag u8][view u64][instance u64] precede it. Receivers hash the wire
/// slice starting here instead of re-encoding the decoded batch.
inline constexpr std::size_t kProposeBatchOffset = 17;

/// Leader's proposal for one consensus instance.
struct Propose {
  std::uint64_t view = 0;
  std::uint64_t instance = 0;
  Batch batch;

  [[nodiscard]] Bytes encode() const;
  /// Encodes a PROPOSE by splicing an already-encoded batch (the same bytes
  /// batch_digest hashed), so the propose path serializes the batch once.
  /// Layout is identical to encode().
  [[nodiscard]] static Bytes encode_with(std::uint64_t view,
                                         std::uint64_t instance,
                                         BytesView encoded_batch);
  [[nodiscard]] static Propose decode(Reader& r);
};

/// Number of requests in an encoded PROPOSE, without a full decode (used by
/// the service-cost model).
[[nodiscard]] std::uint32_t peek_propose_count(BytesView payload);

/// WRITE or ACCEPT vote over the batch digest.
struct Vote {
  MsgType phase = MsgType::kWrite;  // kWrite or kAccept
  std::uint64_t view = 0;
  std::uint64_t instance = 0;
  Digest digest{};

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static Vote decode(MsgType type, Reader& r);
};

/// Reply to the origin of a request. The responding replica is identified by
/// the wire-level sender; `group` tells multi-group clients which
/// destination group is answering.
struct Reply {
  GroupId group;
  std::uint64_t seq = 0;
  Bytes result;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static Reply decode(Reader& r);
  /// Tagless body, shared with the ReplyBatch codec.
  void encode_body(Writer& w) const;
  [[nodiscard]] static Reply decode_body(Reader& r);
};

/// Several replies for the same client coalesced into one wire message (the
/// return-path analogue of request batching: one decided batch triggers at
/// most one reply message per origin per replica). Single replies still go
/// out as plain kReply.
struct ReplyBatch {
  std::vector<Reply> replies;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static ReplyBatch decode(Reader& r);
};

/// Ask peers to move to `next_view` (leader suspected).
struct Stop {
  std::uint64_t next_view = 0;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static Stop decode(Reader& r);
};

/// One value a replica WROTE for a still-open instance of its pipeline
/// window, reported to the new leader during synchronization.
struct OpenValue {
  std::uint64_t instance = 0;
  std::uint64_t value_view = 0;  // view in which the value was written
  Batch value;
};

/// Replica state sent to the leader of `next_view`: how far it decided and
/// every value it WROTE for the open instances of its window (strictly
/// increasing instances, all >= next_instance).
struct StopData {
  std::uint64_t next_view = 0;
  std::uint64_t next_instance = 0;  // first undecided instance
  std::vector<OpenValue> values;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static StopData decode(Reader& r);
};

/// New leader's re-proposal that re-activates the view: one batch per
/// consecutive instance starting at `instance`. Batches below `open_from`
/// are a decided-history prefix for quorum members that lag behind the
/// leader's frontier (they apply it directly, like a state-transfer tail —
/// without it, an instance decided at the leader alone would strand the
/// laggards: f+1 matching state transfer cannot serve single-source
/// history). Batches from `open_from` on are the surviving open window,
/// re-run through WRITE/ACCEPT.
struct Sync {
  std::uint64_t next_view = 0;
  std::uint64_t instance = 0;         // instance of batches.front()
  std::uint64_t open_from = 0;        // first re-proposed (vs decided) slot
  std::vector<Batch> batches;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static Sync decode(Reader& r);
};

/// Request decided instances starting at `from_instance`.
struct StateRequest {
  std::uint64_t from_instance = 0;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static StateRequest decode(Reader& r);
};

/// Decided log tail (and, when the log was truncated below `from_instance`,
/// the latest checkpoint snapshot).
struct StateResponse {
  std::uint64_t first_instance = 0;      // instance of batches.front()
  std::vector<Batch> batches;
  bool has_snapshot = false;
  std::uint64_t snapshot_instance = 0;   // next_instance the snapshot encodes
  Bytes snapshot;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static StateResponse decode(Reader& r);
};

/// Progress gossip sent in response to a STOP: tells a (possibly lagging)
/// peer how far we are, so it can trigger state transfer / view catch-up.
struct Frontier {
  std::uint64_t view = 0;
  std::uint64_t next_instance = 0;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static Frontier decode(Reader& r);
};

/// Encodes a client/relayer request message.
[[nodiscard]] Bytes encode_request(const Request& req);
[[nodiscard]] Request decode_request(Reader& r);

/// Membership payload of a reconfiguration request.
[[nodiscard]] Bytes encode_membership(const std::vector<ProcessId>& replicas);
[[nodiscard]] std::vector<ProcessId> decode_membership(BytesView raw);

}  // namespace byzcast::bft
