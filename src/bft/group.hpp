// Owns the 3f+1 replicas of one atomic broadcast group and wires their
// membership. The application instance for each replica comes from an
// AppFactory, so the same helper assembles plain echo groups (BFT-SMaRt
// benchmarks), ByzCast tree nodes and Baseline relays.
#pragma once

#include <memory>
#include <vector>

#include "bft/application.hpp"
#include "bft/fault.hpp"
#include "bft/replica.hpp"
#include "sim/env.hpp"

namespace byzcast::bft {

class Group {
 public:
  /// Creates and starts 3f+1 replicas. `faults[i]` (when provided) applies
  /// to replica i; at most f replicas should be faulty for the protocol's
  /// guarantees to hold.
  Group(sim::ExecutionEnv& env, GroupId id, int f, const AppFactory& make_app,
        const std::vector<FaultSpec>& faults = {});

  /// The INITIAL membership (what clients are configured with). After a
  /// reconfiguration the live membership is per-replica:
  /// `replica(i).current_membership()`.
  [[nodiscard]] const GroupInfo& info() const { return info_; }
  [[nodiscard]] GroupId id() const { return info_.id; }
  [[nodiscard]] int f() const { return info_.f; }
  [[nodiscard]] int n() const { return info_.n(); }

  [[nodiscard]] Replica& replica(int index) { return *replicas_[index]; }
  [[nodiscard]] const Replica& replica(int index) const {
    return *replicas_[index];
  }

  /// Indices of replicas configured as correct (tests assert on these only).
  [[nodiscard]] std::vector<int> correct_indices() const;

  /// Authorizes `admin` to reconfigure this group (propagates to every
  /// replica, including standbys created afterwards).
  void set_admin(ProcessId admin);

  /// Creates a standby replica (not in the membership) that can be swapped
  /// in by an ordered reconfiguration. Returns its index (>= n()).
  int add_standby(sim::ExecutionEnv& env, std::unique_ptr<Application> app);

 private:
  GroupInfo info_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  ProcessId admin_{};
};

}  // namespace byzcast::bft
