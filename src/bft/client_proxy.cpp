#include "bft/client_proxy.hpp"

#include "common/contracts.hpp"

namespace byzcast::bft {

ClientProxy::ClientProxy(sim::ExecutionEnv& env, GroupInfo group,
                         std::string name)
    : Actor(env, std::move(name)), group_(std::move(group)) {
  retry_interval_ = 2 * env.profile().leader_timeout;
}

void ClientProxy::invoke(Bytes op, Completion on_done) {
  BZC_EXPECTS(!pending_.has_value());
  Pending p;
  p.req.group = group_.id;
  p.req.origin = id();
  p.req.seq = next_seq_++;
  p.req.op = std::move(op);
  p.started_at = now();
  p.on_done = std::move(on_done);
  pending_ = std::move(p);
  transmit();
  arm_retry(pending_->req.seq);
}

void ClientProxy::transmit() {
  BZC_EXPECTS(pending_.has_value());
  const Buffer encoded{encode_request(pending_->req)};
  for (const ProcessId replica : group_.replicas()) send(replica, encoded);
}

void ClientProxy::arm_retry(std::uint64_t seq) {
  schedule_in(retry_interval_, [this, seq] {
    if (crashed()) return;
    if (pending_ && pending_->req.seq == seq) {
      transmit();
      arm_retry(seq);
    }
  });
}

Time ClientProxy::service_cost(const sim::WireMessage&) const {
  return env().profile().cpu_client_reply;
}

void ClientProxy::on_message(const sim::WireMessage& msg) {
  if (msg.payload.empty() || !verify(msg)) return;
  const MsgType type = peek_type(msg.payload);
  if (type != MsgType::kReply && type != MsgType::kReplyBatch) return;
  if (!pending_) return;
  Reader r(msg.payload);
  (void)r.u8();
  if (type == MsgType::kReplyBatch) {
    // Replicas coalesce the replies of one decided batch; each contained
    // reply counts exactly as if it had arrived alone.
    for (Reply& rep : ReplyBatch::decode(r).replies) {
      handle_reply(std::move(rep), msg.from);
      if (!pending_) return;
    }
    return;
  }
  handle_reply(Reply::decode(r), msg.from);
}

void ClientProxy::handle_reply(Reply rep, ProcessId from) {
  if (rep.group != group_.id || rep.seq != pending_->req.seq) return;
  if (!group_.is_member(from)) return;

  const Digest d = Sha256::hash(rep.result);
  auto& voters = pending_->votes[d];
  voters.insert(from);
  pending_->results.emplace(d, std::move(rep.result));

  if (voters.size() >= static_cast<std::size_t>(group_.f + 1)) {
    // f+1 matching replies: at least one correct replica vouches.
    Pending done = std::move(*pending_);
    pending_.reset();
    ++completed_;
    done.on_done(done.results[d], now() - done.started_at);
  }
}

}  // namespace byzcast::bft
