#include "bft/message.hpp"

#include "common/contracts.hpp"

namespace byzcast::bft {

namespace {

void put_digest(Writer& w, const Digest& d) {
  w.bytes(BytesView(d.data(), d.size()));
}

Digest get_digest(Reader& r) {
  const Bytes raw = r.bytes();
  BZC_EXPECTS(raw.size() == 32);
  Digest d;
  std::copy(raw.begin(), raw.end(), d.begin());
  return d;
}

}  // namespace

MsgType peek_type(BytesView payload) {
  BZC_EXPECTS(!payload.empty());
  return static_cast<MsgType>(payload[0]);
}

void Request::encode(Writer& w) const {
  w.group_id(group);
  w.process_id(origin);
  w.u64(seq);
  w.u8(reconfig ? 1 : 0);
  w.bytes(op);
}

Request Request::decode(Reader& r) {
  Request req;
  req.group = r.group_id();
  req.origin = r.process_id();
  req.seq = r.u64();
  req.reconfig = r.u8() != 0;
  req.op = r.bytes();
  return req;
}

namespace {

/// Exact encoded size of a batch (count prefix + fixed request header +
/// length-prefixed op per request).
std::size_t encoded_batch_size(const Batch& batch) {
  std::size_t est = 4;
  for (const auto& req : batch) est += 21 + req.op.size();
  return est;
}

}  // namespace

Bytes encode_batch(const Batch& batch) {
  Writer w;
  w.reserve(encoded_batch_size(batch));
  w.vec(batch, [](Writer& ww, const Request& req) { req.encode(ww); });
  return w.take();
}

Batch decode_batch(Reader& r) {
  return r.vec<Request>([](Reader& rr) { return Request::decode(rr); });
}

Digest batch_digest(const Batch& batch) {
  // Cold-path convenience (state transfer, view change). The propose path
  // encodes the batch once and hashes those bytes directly; receivers hash
  // the wire slice at kProposeBatchOffset — same value, no re-encode.
  const Bytes encoded = encode_batch(batch);
  return Sha256::hash(encoded);
}

Bytes Propose::encode() const {
  return encode_with(view, instance, encode_batch(batch));
}

Bytes Propose::encode_with(std::uint64_t view, std::uint64_t instance,
                           BytesView encoded_batch) {
  Writer w;
  w.reserve(kProposeBatchOffset + encoded_batch.size());
  w.u8(static_cast<std::uint8_t>(MsgType::kPropose));
  w.u64(view);
  w.u64(instance);
  w.raw(encoded_batch);
  return w.take();
}

Propose Propose::decode(Reader& r) {
  Propose p;
  p.view = r.u64();
  p.instance = r.u64();
  p.batch = decode_batch(r);
  return p;
}

std::uint32_t peek_propose_count(BytesView payload) {
  BZC_EXPECTS(peek_type(payload) == MsgType::kPropose);
  // Layout: [tag u8][view u64][instance u64][count u32]...
  Reader r(payload);
  (void)r.u8();
  (void)r.u64();
  (void)r.u64();
  return r.u32();
}

Bytes Vote::encode() const {
  BZC_EXPECTS(phase == MsgType::kWrite || phase == MsgType::kAccept);
  Writer w;
  w.u8(static_cast<std::uint8_t>(phase));
  w.u64(view);
  w.u64(instance);
  put_digest(w, digest);
  return w.take();
}

Vote Vote::decode(MsgType type, Reader& r) {
  BZC_EXPECTS(type == MsgType::kWrite || type == MsgType::kAccept);
  Vote v;
  v.phase = type;
  v.view = r.u64();
  v.instance = r.u64();
  v.digest = get_digest(r);
  return v;
}

Bytes Reply::encode() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kReply));
  encode_body(w);
  return w.take();
}

Reply Reply::decode(Reader& r) { return decode_body(r); }

void Reply::encode_body(Writer& w) const {
  w.group_id(group);
  w.u64(seq);
  w.bytes(result);
}

Reply Reply::decode_body(Reader& r) {
  Reply rep;
  rep.group = r.group_id();
  rep.seq = r.u64();
  rep.result = r.bytes();
  return rep;
}

Bytes ReplyBatch::encode() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kReplyBatch));
  w.vec(replies, [](Writer& ww, const Reply& rep) { rep.encode_body(ww); });
  return w.take();
}

ReplyBatch ReplyBatch::decode(Reader& r) {
  ReplyBatch b;
  b.replies = r.vec<Reply>([](Reader& rr) { return Reply::decode_body(rr); });
  return b;
}

Bytes Stop::encode() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kStop));
  w.u64(next_view);
  return w.take();
}

Stop Stop::decode(Reader& r) {
  Stop s;
  s.next_view = r.u64();
  return s;
}

Bytes StopData::encode() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kStopData));
  w.u64(next_view);
  w.u64(next_instance);
  w.vec(values, [](Writer& ww, const OpenValue& v) {
    ww.u64(v.instance);
    ww.u64(v.value_view);
    ww.vec(v.value, [](Writer& www, const Request& req) { req.encode(www); });
  });
  return w.take();
}

StopData StopData::decode(Reader& r) {
  StopData s;
  s.next_view = r.u64();
  s.next_instance = r.u64();
  s.values = r.vec<OpenValue>([](Reader& rr) {
    OpenValue v;
    v.instance = rr.u64();
    v.value_view = rr.u64();
    v.value = decode_batch(rr);
    return v;
  });
  return s;
}

Bytes Sync::encode() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kSync));
  w.u64(next_view);
  w.u64(instance);
  w.u64(open_from);
  w.vec(batches, [](Writer& ww, const Batch& batch) {
    ww.vec(batch, [](Writer& www, const Request& req) { req.encode(www); });
  });
  return w.take();
}

Sync Sync::decode(Reader& r) {
  Sync s;
  s.next_view = r.u64();
  s.instance = r.u64();
  s.open_from = r.u64();
  const auto n = r.u32();
  s.batches.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) s.batches.push_back(decode_batch(r));
  return s;
}

Bytes StateRequest::encode() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kStateRequest));
  w.u64(from_instance);
  return w.take();
}

StateRequest StateRequest::decode(Reader& r) {
  StateRequest s;
  s.from_instance = r.u64();
  return s;
}

Bytes StateResponse::encode() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kStateResponse));
  w.u64(first_instance);
  w.u32(static_cast<std::uint32_t>(batches.size()));
  for (const auto& batch : batches) {
    w.vec(batch, [](Writer& ww, const Request& req) { req.encode(ww); });
  }
  w.u8(has_snapshot ? 1 : 0);
  w.u64(snapshot_instance);
  w.bytes(snapshot);
  return w.take();
}

StateResponse StateResponse::decode(Reader& r) {
  StateResponse s;
  s.first_instance = r.u64();
  const auto n = r.u32();
  s.batches.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) s.batches.push_back(decode_batch(r));
  s.has_snapshot = r.u8() != 0;
  s.snapshot_instance = r.u64();
  s.snapshot = r.bytes();
  return s;
}

Bytes Frontier::encode() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kFrontier));
  w.u64(view);
  w.u64(next_instance);
  return w.take();
}

Frontier Frontier::decode(Reader& r) {
  Frontier f;
  f.view = r.u64();
  f.next_instance = r.u64();
  return f;
}

Bytes encode_request(const Request& req) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kRequest));
  req.encode(w);
  return w.take();
}

Request decode_request(Reader& r) { return Request::decode(r); }

Bytes encode_membership(const std::vector<ProcessId>& replicas) {
  Writer w;
  w.vec(replicas, [](Writer& ww, ProcessId p) { ww.process_id(p); });
  return w.take();
}

std::vector<ProcessId> decode_membership(BytesView raw) {
  Reader r(raw);
  return r.vec<ProcessId>([](Reader& rr) { return rr.process_id(); });
}

}  // namespace byzcast::bft
