// Fault-injection vocabulary for replicas. The bft layer implements the
// crash/equivocation behaviours; the ByzCast layer (src/core) implements the
// relay-level misbehaviours (fabrication, front-running, dropping relays).
#pragma once

#include "common/types.hpp"

namespace byzcast::bft {

struct FaultSpec {
  /// Crash-silent from the start of the run.
  bool silent = false;
  /// Crash-silent once simulated time reaches this value (< 0: never).
  Time silent_after = -1;
  /// As leader, send different batches to different peers (equivocation;
  /// the WRITE phase prevents it from splitting a decision).
  bool equivocate_propose = false;
  /// Send garbage replies to clients (the f+1 matching-reply rule makes
  /// them harmless as long as at most f replicas do this).
  bool corrupt_replies = false;

  // --- ByzCast relay-level misbehaviours (interpreted by src/core) -------
  /// Invent a multicast message that no client ever sent.
  bool fabricate_relay = false;
  /// Never forward ordered messages to child groups.
  bool drop_relays = false;
  /// Forward copies to one child group in adversarially inverted order
  /// (the front-running scenario documented in DESIGN.md §3).
  bool front_run = false;

  [[nodiscard]] bool is_byzantine() const {
    return silent || silent_after >= 0 || equivocate_propose ||
           corrupt_replies || fabricate_relay || drop_relays || front_run;
  }

  [[nodiscard]] static FaultSpec correct() { return FaultSpec{}; }
  [[nodiscard]] static FaultSpec crashed() {
    FaultSpec f;
    f.silent = true;
    return f;
  }
};

}  // namespace byzcast::bft
