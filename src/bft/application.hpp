// The replicated application hosted by a bft::Replica. Requests reach
// `execute` totally ordered (consensus sequence) and FIFO per origin; all
// correct replicas of a group execute the same sequence. The application
// sends replies — and, in ByzCast, relays into child groups — through the
// ReplicaContext capability.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "bft/message.hpp"
#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace byzcast::bft {

/// Per-request timing captured by the hosting replica along the pipeline
/// wire -> admission -> consensus -> execution, exposed to the application
/// while it executes that request (span tracing). All values are env-clock
/// times; -1 means the stage was not observed locally (e.g. the request was
/// learned via PROPOSE or state transfer rather than admitted directly, or
/// decided through state transfer with no local consensus instance).
struct ExecTiming {
  Time wire_sent = -1;       // carrying request left its sender
  Time wire_enqueued = -1;   // arrived in this replica's inbox
  Time wire_svc_start = -1;  // popped from the inbox: service began
  Time admitted = -1;        // passed admission into the pending queue
  Time proposed = -1;        // proposal for the deciding instance accepted
  Time write_quorum = -1;    // 2f+1 WRITEs seen for that instance
  Time decided = -1;         // 2f+1 ACCEPTs: the instance decided
};

/// Narrow view of the hosting replica offered to the application.
class ReplicaContext {
 public:
  virtual ~ReplicaContext() = default;

  [[nodiscard]] virtual ProcessId self() const = 0;
  [[nodiscard]] virtual GroupId group() const = 0;
  [[nodiscard]] virtual int f() const = 0;
  [[nodiscard]] virtual Time now() const = 0;
  [[nodiscard]] virtual Rng& app_rng() = 0;

  /// Sends a Reply for `req` to its origin.
  virtual void send_reply(const Request& req, Bytes result) = 0;

  /// Sends an already-encoded request into another group's broadcast (the
  /// ByzCast relay path: this replica acts as a client of the child group).
  virtual void send_request(ProcessId to, const Request& req) = 0;

  /// Fans the same request to every destination. Replica overrides this to
  /// encode once and share the buffer across all 3f+1 sends; the default
  /// keeps narrow test doubles working.
  virtual void send_request(const std::vector<ProcessId>& dsts,
                            const Request& req) {
    for (const ProcessId to : dsts) send_request(to, req);
  }

  /// Accounts extra CPU spent by the application while executing.
  virtual void consume_app_cpu(Time cost) = 0;

  /// Timing of the request currently being executed, or null when the host
  /// does not track it (tracking is on only while a SpanLog is attached).
  /// Valid only inside Application::execute; do not retain the pointer.
  [[nodiscard]] virtual const ExecTiming* exec_timing() const {
    return nullptr;
  }
};

/// One request's execution split for the execute/reply stage (stage
/// pipeline, ROADMAP item 5): the ordering-relevant part already ran inside
/// execute_staged; `deferred` is the pure per-request remainder (application
/// work on one key + reply building), shardable by `key`.
///
/// Contract for `deferred`: it must not read or write shared application or
/// replica state — only bytes it captured by value (ref-counted Buffers) and
/// the thread-safe reply path of its ReplicaContext. This is what lets exec
/// shards run concurrently with the order stage, and lets checkpoints
/// snapshot the application without fencing the shards. A null `deferred`
/// means the request was fully executed serially.
struct StagedExec {
  std::uint64_t key = 0;
  std::function<void()> deferred;
};

/// FNV-1a over the operation bytes: the default destination key for exec
/// sharding (requests touching the same key land on the same shard).
[[nodiscard]] inline std::uint64_t stage_key(BytesView op) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto b : op) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

class Application {
 public:
  virtual ~Application() = default;

  /// Called once, before any execution, with the hosting replica's context.
  virtual void attach(ReplicaContext& ctx) { ctx_ = &ctx; }

  /// Executes one delivered request.
  virtual void execute(const Request& req) = 0;

  /// Staged execution: runs the ordering-relevant part inline and returns
  /// the deferrable remainder (see StagedExec). The default keeps everything
  /// serial — applications opt in by overriding.
  [[nodiscard]] virtual StagedExec execute_staged(const Request& req) {
    execute(req);
    return {};
  }

  /// Serializes application state for checkpoints / state transfer.
  [[nodiscard]] virtual Bytes snapshot() const { return {}; }
  /// Restores from a snapshot produced by `snapshot` on a peer.
  virtual void restore(BytesView) {}

 protected:
  ReplicaContext* ctx_ = nullptr;  // set by attach; non-owning
};

/// Replies with the SHA-256 digest of the operation. The stand-in for the
/// paper's microbenchmark service when measuring plain BFT-SMaRt.
class EchoApplication final : public Application {
 public:
  void execute(const Request& req) override {
    const Digest d = Sha256::hash(req.op);
    ctx_->send_reply(req, Bytes(d.begin(), d.begin() + 8));
  }

  /// The whole echo (digest + reply) is pure per-request work: defer it all.
  [[nodiscard]] StagedExec execute_staged(const Request& req) override {
    StagedExec s;
    s.key = stage_key(req.op.view());
    s.deferred = [ctx = ctx_, req] {
      const Digest d = Sha256::hash(req.op);
      ctx->send_reply(req, Bytes(d.begin(), d.begin() + 8));
    };
    return s;
  }
};

using AppFactory = std::function<std::unique_ptr<Application>(int replica_index)>;

}  // namespace byzcast::bft
