#include "bft/group.hpp"

#include "common/contracts.hpp"

namespace byzcast::bft {

Group::Group(sim::ExecutionEnv& env, GroupId id, int f,
             const AppFactory& make_app,
             const std::vector<FaultSpec>& faults) {
  BZC_EXPECTS(f >= 1);
  const int n = 3 * f + 1;
  BZC_EXPECTS(faults.empty() || static_cast<int>(faults.size()) == n);

  info_.id = id;
  info_.f = f;
  replicas_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const FaultSpec spec =
        faults.empty() ? FaultSpec::correct()
                       : faults[static_cast<std::size_t>(i)];
    replicas_.push_back(
        std::make_unique<Replica>(env, id, f, i, make_app(i), spec));
    info_.add_replica(replicas_.back()->id());
  }
  for (auto& replica : replicas_) replica->start(info_);
}

void Group::set_admin(ProcessId admin) {
  admin_ = admin;
  for (auto& replica : replicas_) replica->set_admin(admin);
}

int Group::add_standby(sim::ExecutionEnv& env,
                       std::unique_ptr<Application> app) {
  const int index = static_cast<int>(replicas_.size());
  replicas_.push_back(std::make_unique<Replica>(
      env, info_.id, info_.f, index, std::move(app), FaultSpec::correct()));
  if (admin_.valid()) replicas_.back()->set_admin(admin_);
  replicas_.back()->start_standby(info_);
  return index;
}

std::vector<int> Group::correct_indices() const {
  std::vector<int> out;
  for (int i = 0; i < n(); ++i) {
    if (!replica(i).faults().is_byzantine()) out.push_back(i);
  }
  return out;
}

}  // namespace byzcast::bft
