// Client-side proxy for one group's atomic broadcast: sends an operation to
// every replica, collects f+1 matching replies (the BFT client rule), and
// invokes the caller's completion callback with the result and the measured
// latency. Retransmits on timeout (covers message loss and faulty leaders
// that drop requests).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>

#include "bft/message.hpp"
#include "bft/replica.hpp"
#include "sim/actor.hpp"

namespace byzcast::bft {

class ClientProxy final : public sim::Actor {
 public:
  using Completion = std::function<void(const Bytes& result, Time latency)>;

  ClientProxy(sim::ExecutionEnv& env, GroupInfo group, std::string name);

  /// Broadcasts `op` in the group; at most one invocation may be outstanding
  /// (closed loop), which is how the paper's clients behave.
  void invoke(Bytes op, Completion on_done);

  [[nodiscard]] bool busy() const { return pending_.has_value(); }
  [[nodiscard]] std::uint64_t completed() const { return completed_; }

 protected:
  void on_message(const sim::WireMessage& msg) override;
  [[nodiscard]] Time service_cost(const sim::WireMessage&) const override;

 private:
  void transmit();
  void arm_retry(std::uint64_t seq);
  /// Applies one reply (standalone or from a kReplyBatch) to the f+1 vote.
  void handle_reply(Reply rep, ProcessId from);

  struct Pending {
    Request req;
    Time started_at = 0;
    Completion on_done;
    // result digest -> replicas that reported it
    std::map<Digest, std::set<ProcessId>> votes;
    std::map<Digest, Bytes> results;
  };

  GroupInfo group_;
  std::uint64_t next_seq_ = 0;
  std::optional<Pending> pending_;
  std::uint64_t completed_ = 0;
  Time retry_interval_;
};

}  // namespace byzcast::bft
