#include "bft/replica.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "common/log.hpp"
#include "common/span.hpp"

namespace byzcast::bft {

namespace {
/// Reply sink installed while a deferred exec task runs on a shard thread:
/// send_reply appends here instead of touching the replica's (order-stage)
/// reply buffer, and the sends release through the ExecBarrier in delivery
/// order. Thread-local so shards never contend and the order stage (where
/// the pointer stays null) is unaffected.
thread_local std::vector<ExecBarrier::PendingSend>* t_stage_sends = nullptr;
}  // namespace

Replica::Replica(sim::ExecutionEnv& env, GroupId group, int f, int index,
                 std::unique_ptr<Application> app, FaultSpec faults)
    : Actor(env, to_string(group) + "/r" + std::to_string(index)),
      group_(group),
      f_(f),
      index_(index),
      app_(std::move(app)),
      faults_(faults) {
  BZC_EXPECTS(f_ >= 1);
  BZC_EXPECTS(app_ != nullptr);
  app_->attach(*this);
}

/// Encodes the replica-local durable state carried by checkpoints and state
/// transfer: application snapshot + delivery bookkeeping + membership (so a
/// standby that restores a post-reconfiguration snapshot learns it joined).
Bytes Replica::make_snapshot() const {
  Writer w;
  w.bytes(app_->snapshot());
  w.u64(executed_);
  w.bytes(BytesView(history_digest_.data(), history_digest_.size()));
  std::vector<std::pair<ProcessId, std::uint64_t>> entries(fifo_next_.begin(),
                                                           fifo_next_.end());
  std::sort(entries.begin(), entries.end());
  w.u32(static_cast<std::uint32_t>(entries.size()));
  for (const auto& [pid, seq] : entries) {
    w.process_id(pid);
    w.u64(seq);
  }
  w.vec(info_.replicas(), [](Writer& ww, ProcessId p) { ww.process_id(p); });
  return w.take();
}

void Replica::restore_snapshot(BytesView snapshot) {
  Reader sr(snapshot);
  const Bytes app_bytes = sr.bytes();
  app_->restore(app_bytes);
  executed_ = sr.u64();
  const Bytes hist = sr.bytes();
  BZC_ASSERT(hist.size() == history_digest_.size());
  std::copy(hist.begin(), hist.end(), history_digest_.begin());
  fifo_next_.clear();
  holdback_.clear();
  const auto n = sr.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    const ProcessId pid = sr.process_id();
    fifo_next_[pid] = sr.u64();
  }
  info_.set_replicas(
      sr.vec<ProcessId>([](Reader& rr) { return rr.process_id(); }));
  if (info_.is_member(id())) {
    standby_ = false;
  } else if (!standby_) {
    removed_ = true;
    crash();
  }
}

void Replica::start(const GroupInfo& info) {
  BZC_EXPECTS(!started_);
  BZC_EXPECTS(info.id == group_ && info.f == f_);
  BZC_EXPECTS(static_cast<int>(info.replicas().size()) == 3 * f_ + 1);
  BZC_EXPECTS(info.replicas()[static_cast<std::size_t>(index_)] == id());
  info_ = info;
  started_ = true;
  if (faults_.silent) {
    crash();
    return;
  }
  if (faults_.silent_after >= 0) {
    schedule_in(faults_.silent_after, [this] { crash(); });
  }
  arm_liveness_timer();
}

void Replica::start_standby(const GroupInfo& info) {
  BZC_EXPECTS(!started_);
  BZC_EXPECTS(info.id == group_ && info.f == f_);
  BZC_EXPECTS(!info.is_member(id()));
  info_ = info;
  started_ = true;
  standby_ = true;
  arm_liveness_timer();  // drives anti-entropy once evidence arrives
}

ProcessId Replica::leader_of(std::uint64_t view) const {
  return info_.replicas()[view % info_.replicas().size()];
}

bool Replica::is_leader() const { return leader_of(view_) == id(); }

void Replica::broadcast(const Buffer& payload) {
  for (const ProcessId peer : info_.replicas()) {
    if (peer != id()) send(peer, payload);
  }
}

Time Replica::service_cost(const sim::WireMessage& msg) const {
  if (msg.payload.empty()) return 0;
  const auto& pr = env().profile();
  Time base;
  switch (peek_type(msg.payload)) {
    case MsgType::kRequest:
      base = pr.cpu_request_admission;
      break;
    case MsgType::kPropose:
      base = pr.cpu_validate_fixed +
             pr.cpu_validate_per_msg *
                 static_cast<Time>(peek_propose_count(msg.payload));
      break;
    case MsgType::kWrite:
    case MsgType::kAccept:
    default:
      base = pr.cpu_vote;
      break;
  }
  // A verify-stage verdict means the MAC check + digest work already ran on
  // a verify worker; the order stage only pays the remainder.
  if (msg.verify_verdict != 0) {
    base = std::max<Time>(0, base - stage_verify_cost(msg));
  }
  return base;
}

// --- stage-pipeline hooks ----------------------------------------------------

bool Replica::stage_verifiable(const sim::WireMessage& msg) const {
  if (!started_ || msg.payload.empty()) return false;
  switch (peek_type(msg.payload)) {
    case MsgType::kRequest:
    case MsgType::kPropose:
    case MsgType::kWrite:
    case MsgType::kAccept:
      return true;
    default:
      // Control plane (view change, state transfer) and replies stay on the
      // serial path: rare, and their handling is entangled with view state.
      return false;
  }
}

Time Replica::stage_verify_cost(const sim::WireMessage& msg) const {
  if (msg.payload.empty()) return 0;
  const auto& pr = env().profile();
  // Each share is clamped by its serial constant so the residual order-stage
  // cost in service_cost can never go negative, whatever the profile says.
  switch (peek_type(msg.payload)) {
    case MsgType::kRequest:
      return std::min(pr.cpu_verify_request, pr.cpu_request_admission);
    case MsgType::kPropose:
      return std::min(pr.cpu_verify_propose_fixed, pr.cpu_validate_fixed) +
             std::min(pr.cpu_verify_per_msg, pr.cpu_validate_per_msg) *
                 static_cast<Time>(peek_propose_count(msg.payload));
    case MsgType::kWrite:
    case MsgType::kAccept:
      return std::min(pr.cpu_verify_vote, pr.cpu_vote);
    default:
      return 0;
  }
}

void Replica::stage_precompute(sim::WireMessage& msg) const {
  // Stamp the PROPOSE batch digest: the wire bytes past the fixed header ARE
  // the canonical batch encoding (see handle_propose), so the digest is a
  // pure function of the message — safe on a verify worker.
  if (msg.payload.size() <= kProposeBatchOffset) return;
  if (peek_type(msg.payload) != MsgType::kPropose) return;
  msg.batch_digest =
      Sha256::hash(msg.payload.view().subspan(kProposeBatchOffset));
  msg.has_batch_digest = true;
}

sim::StageBackend* Replica::exec_stage() const {
  sim::StageBackend* stages = env().stages();
  return (stages != nullptr && stages->exec_shards() > 0) ? stages : nullptr;
}

bool Replica::sim_exec_model_on() const {
  const auto& pr = env().profile();
  // Pure simulation only: a real backend executes on real shard threads, and
  // under the wall-clock profile cpu_execute_per_msg is 0 so the model stays
  // inert even if shards are configured without a StagePool.
  return env().stages() == nullptr && pr.effective_exec_shards() > 0 &&
         pr.cpu_execute_per_msg > 0;
}

void Replica::on_message(const sim::WireMessage& msg) {
  if (!started_ || msg.payload.empty()) return;
  if (!verify(msg)) return;  // unauthenticated traffic is dropped
  if (msg.verify_verdict != 0) ++counters_.staged_verifies;
  Reader r(msg.payload);
  const auto type = static_cast<MsgType>(r.u8());
  switch (type) {
    case MsgType::kRequest:
      handle_request(msg, r);
      break;
    case MsgType::kPropose:
      handle_propose(msg, r);
      break;
    case MsgType::kWrite:
    case MsgType::kAccept:
      handle_vote(type, msg, r);
      break;
    case MsgType::kStop:
      handle_stop(msg, r);
      break;
    case MsgType::kStopData:
      handle_stopdata(msg, r);
      break;
    case MsgType::kSync:
      handle_sync(msg, r);
      break;
    case MsgType::kStateRequest:
      handle_state_request(msg, r);
      break;
    case MsgType::kStateResponse:
      handle_state_response(msg, r);
      break;
    case MsgType::kFrontier:
      handle_frontier(msg, r);
      break;
    case MsgType::kReply:
    case MsgType::kReplyBatch:
      break;  // replicas do not consume replies
  }
}

// --- request admission ------------------------------------------------------

void Replica::handle_request(const sim::WireMessage& msg, Reader& r) {
  Request req = decode_request(r);
  // A request is admitted only if its claimed origin is the authenticated
  // wire-level sender: a Byzantine process can inject content as itself but
  // cannot impersonate others.
  if (req.origin != msg.from || req.group != group_) {
    ++counters_.rejected_requests;
    return;
  }
  if (req.reconfig && (!admin_.valid() || req.origin != admin_)) {
    ++counters_.rejected_requests;  // unauthorized membership change
    return;
  }
  admit_request(std::move(req), &msg);
}

void Replica::admit_request(Request req, const sim::WireMessage* wire) {
  const MessageId rid = req.id();
  if (decided_requests_.contains(rid) || pending_since_.contains(rid)) return;
  AdmitInfo info;
  info.suspicion = now();
  info.admitted = now();
  if (wire != nullptr) {
    info.wire_sent = wire->sent_at;
    info.wire_enqueued = wire->enqueued_at;
    info.wire_svc_start = wire->svc_start;
  }
  pending_since_.emplace(rid, info);
  pending_.push_back(std::move(req));
  maybe_start_consensus();
}

std::uint64_t Replica::pipeline_depth() const {
  return std::max<std::uint64_t>(1, env().profile().pipeline_depth);
}

Time Replica::window_delay() const {
  const auto& pr = env().profile();
  return pr.batch_timeout > 0 ? pr.batch_timeout : pr.cpu_propose_fixed;
}

void Replica::maybe_start_consensus() {
  if (!is_leader() || !view_active_ || pending_.empty()) return;
  // The next proposal slot is one past the highest open instance; bail when
  // the pipeline window is full (re-invoked from decide()).
  const std::uint64_t slot =
      open_.empty() ? next_instance_ : open_.rbegin()->first + 1;
  if (slot >= next_instance_ + pipeline_depth()) return;

  const auto& pr = env().profile();
  if (batch_target_ == 0) batch_target_ = std::max<std::uint32_t>(1, pr.batch_max);

  if (window_armed_) {
    // Early cut: the backlog already fills the adaptive target — no point
    // waiting out the rest of the window. The residual fixed assembly work
    // is still paid as busy CPU, and the target grows (the backlog arrives
    // faster than the window drains it).
    if (pending_.size() >= batch_target_) {
      ++window_epoch_;  // the armed timer is now stale; it must not re-cut
      window_armed_ = false;
      const Time residual =
          std::max<Time>(0, window_delay() - (now() - window_armed_at_));
      consume_cpu(residual);
      if (!pr.batch_adapt_off) {
        batch_target_ = std::min<std::uint32_t>(
            std::max<std::uint32_t>(1, pr.batch_max), batch_target_ * 2);
      }
      ++counters_.early_batch_cuts;
      do_propose();
    }
    return;
  }
  // The fixed proposal cost is modeled as a real assembly delay: the batch
  // is cut when the delay elapses, so requests arriving meanwhile ride the
  // same consensus instance (BFT-SMaRt's batching behaviour), and a single
  // client's latency includes the leader's proposal work. The firing is
  // tagged with (view, epoch): a timer armed under leadership assumptions
  // that no longer hold is dropped.
  window_armed_ = true;
  window_view_ = view_;
  window_armed_at_ = now();
  const std::uint64_t armed_view = view_;
  const std::uint64_t armed_epoch = window_epoch_;
  schedule_in(window_delay(), [this, armed_view, armed_epoch] {
    if (crashed()) return;
    if (armed_epoch != window_epoch_ || !window_armed_) {
      ++counters_.stale_window_drops;  // superseded by an early cut or reset
      return;
    }
    window_armed_ = false;
    if (armed_view != view_ || !view_active_ || !is_leader()) {
      ++counters_.stale_window_drops;  // armed in a view we no longer lead
      return;
    }
    const bool adapt = !env().profile().batch_adapt_off;
    if (pending_.size() >= batch_target_) {
      // The window elapsed with a full backlog (the pipeline was saturated,
      // so no intermediate call got to cut early): classify as a full cut
      // and grow, exactly as the early-cut path would.
      if (adapt) {
        batch_target_ = std::min<std::uint32_t>(
            std::max<std::uint32_t>(1, env().profile().batch_max),
            batch_target_ * 2);
      }
      ++counters_.early_batch_cuts;
    } else {
      // Window expired underfull: shrink the target toward the observed
      // backlog so future bursts cut without waiting the full window.
      // Under the batch_adapt_off ablation the target stays frozen at
      // batch_max, so every cut waits out the full window (fixed batching).
      if (adapt && pending_.size() < batch_target_ / 2) {
        batch_target_ = std::max<std::uint32_t>(
            std::max<std::uint32_t>(1, env().profile().batch_min),
            batch_target_ / 2);
      }
      ++counters_.timer_batch_cuts;
    }
    do_propose();
  });
}

Batch Replica::cut_batch() {
  const auto& pr = env().profile();
  const std::size_t take = std::min<std::size_t>(
      pending_.size(), std::max<std::uint32_t>(1, pr.batch_max));
  Batch batch;
  batch.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    Request& req = pending_.front();
    const auto it = pending_since_.find(req.id());
    if (it != pending_since_.end()) it->second.inflight = true;
    // Moving the Request shares the ref-counted payload; no byte copy.
    batch.push_back(std::move(req));
    pending_.pop_front();
  }
  return batch;
}

void Replica::do_propose() {
  if (!is_leader() || !view_active_ || pending_.empty()) return;
  const std::uint64_t slot =
      open_.empty() ? next_instance_ : open_.rbegin()->first + 1;
  if (slot >= next_instance_ + pipeline_depth()) return;  // window full
  const auto& pr = env().profile();
  Batch batch = cut_batch();
  if (batch.empty()) return;

  consume_cpu(pr.cpu_propose_per_msg * static_cast<Time>(batch.size()));
  ++counters_.proposals_made;

  if (faults_.equivocate_propose && batch.size() >= 1) {
    // Send batch A to the first half of the peers and a reordered batch B to
    // the rest. The WRITE quorum intersection ensures at most one decides.
    Batch alt(batch.rbegin(), batch.rend());
    if (alt.size() == 1) {
      // Single request: corrupt the copy instead (payloads are immutable
      // shared buffers, so rebuild the op with a trailing byte).
      Bytes corrupted(alt[0].op.data(), alt[0].op.data() + alt[0].op.size());
      corrupted.push_back(0xEE);
      alt[0].op = Buffer(std::move(corrupted));
    }
    const Propose pa{view_, slot, batch};
    const Propose pb{view_, slot, alt};
    const Buffer ea{pa.encode()};
    const Buffer eb{pb.encode()};
    std::size_t k = 0;
    for (const ProcessId peer : info_.replicas()) {
      if (peer == id()) continue;
      send(peer, (k++ % 2 == 0) ? ea : eb);
    }
    accept_proposal(view_, slot, std::move(batch));
    return;
  }
  // One serialization feeds both the consensus digest and the wire encoding,
  // and the encoded PROPOSE fans out as one shared buffer.
  const Bytes encoded_batch = encode_batch(batch);
  const Digest digest = Sha256::hash(encoded_batch);
  broadcast(Propose::encode_with(view_, slot, encoded_batch));
  accept_proposal(view_, slot, std::move(batch), &digest);
  // Remaining backlog may warrant arming the next window right away (the
  // pipeline permits further instances before this one decides).
  maybe_start_consensus();
}

// --- consensus ---------------------------------------------------------------

void Replica::handle_propose(const sim::WireMessage& msg, Reader& r) {
  Propose p = Propose::decode(r);
  // A Byzantine leader could append garbage past the encoded batch; the
  // slice hash below would then differ from batch_digest(p.batch) and split
  // honest replicas into distinct digest camps for one batch. With trailing
  // bytes rejected the fixed-width codec is bijective and the slice IS the
  // canonical encoding.
  if (!r.exhausted()) return;
  if (msg.from != leader_of(p.view)) return;  // only the view's leader
  if (p.view > view_) max_seen_view_ = std::max(max_seen_view_, p.view);
  // The wire bytes past the fixed header ARE the encoded batch; hashing the
  // slice gives batch_digest(p.batch) without a second serialization (the
  // codec is canonical: decode∘encode is the identity on encodings). The
  // verify stage precomputes this digest off the critical path when on.
  const Digest digest =
      msg.has_batch_digest
          ? msg.batch_digest
          : Sha256::hash(msg.payload.view().subspan(kProposeBatchOffset));
  accept_proposal(p.view, p.instance, std::move(p.batch), &digest);
}

void Replica::accept_proposal(std::uint64_t view, std::uint64_t instance,
                              Batch batch, const Digest* digest) {
  if (instance < next_instance_) return;  // already decided
  if (instance >= next_instance_ + pipeline_depth()) {
    // Beyond our window: we are behind regardless of views.
    max_seen_instance_ = std::max(max_seen_instance_, instance);
    request_state_transfer();
    return;
  }
  if (view != view_ || !view_active_) return;
  const auto [it, inserted] = open_.try_emplace(instance);
  OpenConsensus& oc = it->second;
  if (!inserted && oc.proposal) return;  // one proposal per (view, instance)

  oc.instance = instance;
  oc.view = view;
  oc.digest = digest != nullptr ? *digest : batch_digest(batch);
  oc.proposal = std::move(batch);
  oc.sent_write = true;
  oc.proposed_at = now();
  pipeline_high_water_ = std::max(pipeline_high_water_, open_.size());

  const Vote write{MsgType::kWrite, view, instance, oc.digest};
  votes_[VoteKey{instance, view, false, oc.digest}].insert(id());
  broadcast(write.encode());
  check_quorums();
}

void Replica::handle_vote(MsgType type, const sim::WireMessage& msg,
                          Reader& r) {
  const Vote v = Vote::decode(type, r);
  if (v.instance < next_instance_) return;  // stale
  if (!info_.is_member(msg.from)) return;
  auto& voters =
      votes_[VoteKey{v.instance, v.view, type == MsgType::kAccept, v.digest}];
  voters.insert(msg.from);
  if (v.view > view_) max_seen_view_ = std::max(max_seen_view_, v.view);
  if (voters.size() >= static_cast<std::size_t>(f_ + 1)) {
    if (v.phase == MsgType::kAccept) {
      // f+1 ACCEPTs mean this instance is about to decide at correct
      // replicas: remember it so anti-entropy fetches it even if we lost
      // the proposal (e.g. it raced with our own catch-up).
      max_seen_instance_ = std::max(max_seen_instance_, v.instance + 1);
    }
    if (v.instance >= next_instance_ + pipeline_depth()) {
      // Votes for instances in [next_instance_, next_instance_ + depth) are
      // normal under pipelining (their PROPOSE may simply trail the votes);
      // only evidence past the window means the group moved on without us
      // (partition, recovery). Catch up.
      max_seen_instance_ = std::max(max_seen_instance_, v.instance);
      request_state_transfer();
    }
  }
  check_quorums();
}

void Replica::check_quorums() {
  const auto quorum = static_cast<std::size_t>(info_.quorum());
  for (auto& [instance, oc] : open_) {
    if (!oc.proposal || oc.decided) continue;

    if (!oc.sent_accept) {
      const auto it = votes_.find(VoteKey{instance, oc.view, false, oc.digest});
      if (it == votes_.end() || it->second.size() < quorum) continue;
      oc.sent_accept = true;
      oc.write_quorum_at = now();
      const Vote accept{MsgType::kAccept, oc.view, instance, oc.digest};
      votes_[VoteKey{instance, oc.view, true, oc.digest}].insert(id());
      broadcast(accept.encode());
    }

    const auto it = votes_.find(VoteKey{instance, oc.view, true, oc.digest});
    if (it == votes_.end() || it->second.size() < quorum) continue;
    // ACCEPT quorum complete. Decisions apply strictly in instance order, so
    // an out-of-order completion is buffered until the window's front
    // catches up (advance_decided below).
    oc.decided = true;
    if (instance != next_instance_) ++counters_.buffered_decisions;
  }
  advance_decided();
}

void Replica::advance_decided() {
  if (advancing_) return;  // decide() can re-enter via its own handlers
  advancing_ = true;
  while (true) {
    const auto it = open_.find(next_instance_);
    if (it == open_.end() || !it->second.decided) break;
    OpenConsensus oc = std::move(it->second);
    open_.erase(it);
    decide(std::move(*oc.proposal), oc.proposed_at, oc.write_quorum_at);
  }
  advancing_ = false;
}

void Replica::decide(Batch batch, Time proposed_at, Time write_quorum_at) {
  BZC_ASSERT(log_base_ + log_.size() == next_instance_);
  log_.push_back(batch);
  ++next_instance_;
  max_decided_batch_ = std::max(max_decided_batch_, batch.size());

  if (MetricsRegistry* reg = env().metrics()) {
    if (batch_size_hist_ == nullptr) {
      batch_size_hist_ = &reg->histogram(
          "replica.batch_size." + to_string(group_),
          {1, 2, 4, 8, 16, 32, 64, 128, 256, 512});
    }
    batch_size_hist_->observe(static_cast<double>(batch.size()));
  }

  // Consensus instances we were still running below the new frontier (e.g.
  // adopted through state transfer after an equivocating leader split the
  // proposals) are obsolete; drop them so later proposals are accepted.
  while (!open_.empty() && open_.begin()->first < next_instance_) {
    open_.erase(open_.begin());
  }

  SpanLog* spans = env().spans();
  if (spans != nullptr && spans->actor_spans() && proposed_at >= 0) {
    spans->record(Span{MessageId{}, SpanKind::kConsensusInstance, group_, id(),
                       proposed_at, now(),
                       static_cast<std::int64_t>(next_instance_ - 1)});
  }

  std::unordered_set<MessageId> in_batch;
  in_batch.reserve(batch.size());
  for (const auto& req : batch) {
    const MessageId rid = req.id();
    in_batch.insert(rid);
    decided_requests_.insert(rid);
    if (spans != nullptr) {
      // Freeze this request's pipeline timing now: execution may be held
      // back by the per-origin FIFO until a later decide, but its stages
      // belong to this instance.
      ExecTiming t;
      const auto ait = pending_since_.find(rid);
      if (ait != pending_since_.end()) {
        t.wire_sent = ait->second.wire_sent;
        t.wire_enqueued = ait->second.wire_enqueued;
        t.wire_svc_start = ait->second.wire_svc_start;
        t.admitted = ait->second.admitted;
      }
      t.proposed = proposed_at;
      t.write_quorum = write_quorum_at;
      t.decided = now();
      exec_info_.insert_or_assign(rid, t);
    }
    pending_since_.erase(rid);
  }
  std::erase_if(pending_,
                [&in_batch](const Request& req) {
                  return in_batch.contains(req.id());
                });
  // Progress resets suspicion: requests still pending restart their clock,
  // so a busy-but-live leader is not suspected merely because the queue is
  // longer than the timeout.
  for (auto& [rid, info] : pending_since_) info.suspicion = now();

  // Garbage-collect votes below the decided frontier.
  while (!votes_.empty() && votes_.begin()->first.instance < next_instance_) {
    votes_.erase(votes_.begin());
  }

  execute_batch(batch);
  maybe_checkpoint();
  maybe_start_consensus();
}

// --- execution (total order -> per-origin FIFO -> application) ---------------

void Replica::execute_batch(const Batch& batch) {
  // Return-path batching: every reply produced while this decided batch
  // executes (including held-back requests that unblock now) is buffered and
  // flushed as one wire message per origin.
  buffer_replies_ = true;
  if (sim_exec_model_on()) {
    exec_bucket_.assign(env().profile().effective_exec_shards(), 0);
    exec_deferred_total_ = 0;
  }
  for (const auto& req : batch) deliver_fifo(req);
  if (!exec_bucket_.empty()) {
    // Shard-makespan model: the deferred work of this batch ran spread over
    // S buckets (least-loaded-first), so the order stage only stalls for the
    // longest bucket. Refund the rest of the serially-charged cost.
    const Time makespan =
        *std::max_element(exec_bucket_.begin(), exec_bucket_.end());
    consume_cpu(-(exec_deferred_total_ - makespan));
    exec_bucket_.clear();
  }
  buffer_replies_ = false;
  flush_replies();
}

void Replica::flush_replies() {
  for (auto& [origin, replies] : reply_buffer_) {
    BZC_ASSERT(!replies.empty());
    if (replies.size() == 1) {
      send(origin, replies.front().encode());
    } else {
      send(origin, ReplyBatch{std::move(replies)}.encode());
    }
  }
  reply_buffer_.clear();
}

void Replica::deliver_fifo(const Request& req) {
  auto& next = fifo_next_[req.origin];
  if (req.seq < next) return;  // duplicate of an executed request
  if (req.seq > next) {
    holdback_[req.origin].emplace(req.seq, req);
    return;
  }
  execute_one(req);
  ++next;
  auto& hb = holdback_[req.origin];
  for (auto it = hb.find(next); it != hb.end(); it = hb.find(next)) {
    execute_one(it->second);
    hb.erase(it);
    ++next;
  }
}

void Replica::execute_one(const Request& req) {
  ++executed_;
  if (!exec_info_.empty()) {
    const auto it = exec_info_.find(req.id());
    if (it != exec_info_.end()) {
      cur_exec_timing_ = it->second;
      executing_timed_ = true;
      exec_info_.erase(it);
    }
  }
  // Fold the request into the rolling history digest (replicas of a group
  // must agree on it — checked by tests).
  Writer w;
  w.bytes(BytesView(history_digest_.data(), history_digest_.size()));
  w.message_id(req.id());
  w.bytes(req.op);
  history_digest_ = Sha256::hash(w.data());

  consume_cpu(env().profile().cpu_execute_per_msg);
  if (req.reconfig) {
    // Reconfiguration mutates replica state; always serial.
    apply_reconfig(req);
  } else if (sim::StageBackend* shards = exec_stage()) {
    // Runtime exec sharding: the ordering-relevant part ran inside
    // execute_staged; the deferred remainder goes to a shard keyed by the
    // request's destination key, and its replies release through the
    // per-origin FIFO barrier in delivery order (§II-B).
    StagedExec staged = app_->execute_staged(req);
    if (staged.deferred) {
      ++counters_.deferred_execs;
      if (exec_barrier_ == nullptr) {
        exec_barrier_ = std::make_unique<ExecBarrier>(
            [this](ProcessId to, Buffer payload) {
              send_from_stage(to, std::move(payload));
            });
      }
      const ProcessId origin = req.origin;
      const std::uint64_t ticket = exec_barrier_->open(origin);
      shards->submit_exec(
          staged.key, [this, origin, ticket, work = std::move(staged.deferred)] {
            std::vector<ExecBarrier::PendingSend> sends;
            t_stage_sends = &sends;
            work();
            t_stage_sends = nullptr;
            exec_barrier_->complete(origin, ticket, std::move(sends));
          });
    }
  } else if (sim_exec_model_on()) {
    // Simulated exec sharding: run the deferred part inline (deterministic),
    // but price it onto the least-loaded shard bucket; execute_batch refunds
    // the serial sum down to the bucket makespan afterwards.
    const Time before = consumed_cpu();
    StagedExec staged = app_->execute_staged(req);
    if (staged.deferred) {
      ++counters_.deferred_execs;
      staged.deferred();
      // Deferrable cost = the per-request execute constant (charged above)
      // plus whatever app CPU the deferred part declared while running.
      const Time cost =
          consumed_cpu() - before + env().profile().cpu_execute_per_msg;
      if (!exec_bucket_.empty() && cost > 0) {
        auto it = std::min_element(exec_bucket_.begin(), exec_bucket_.end());
        *it += cost;
        exec_deferred_total_ += cost;
      }
    }
  } else {
    app_->execute(req);
  }
  executing_timed_ = false;
}

void Replica::apply_reconfig(const Request& req) {
  // Defense in depth: the admission filter already enforces this, but the
  // request may arrive through state transfer from before admin changes.
  if (!admin_.valid() || req.origin != admin_) return;
  std::vector<ProcessId> next = decode_membership(req.op);
  if (static_cast<int>(next.size()) != 3 * f_ + 1) return;
  for (const ProcessId p : next) {
    if (!p.valid()) return;
  }
  info_.set_replicas(std::move(next));
  if (!info_.is_member(id())) {
    // We were reconfigured out; retire (BFT-SMaRt shuts the replica down).
    removed_ = true;
    crash();
    return;
  }
  standby_ = false;
  // Leadership may have moved onto or off us; resume proposing if due.
  maybe_start_consensus();
}

void Replica::maybe_checkpoint() {
  if (log_.size() < env().profile().checkpoint_period) return;
  checkpoint_snapshot_ = make_snapshot();
  checkpoint_instance_ = next_instance_;
  log_base_ = next_instance_;
  log_.clear();
  ++counters_.checkpoints_taken;
}

void Replica::send_reply(const Request& req, Bytes result) {
  if (faults_.corrupt_replies) {
    // Replica-specific garbage (a faulty-but-not-colluding replica).
    // Colluding replicas that agree on identical wrong bytes can only fool
    // a client when more than f are faulty — outside the fault model.
    result.assign(result.size() + 1, 0xBD);
    result.push_back(static_cast<std::uint8_t>(id().value));
  }
  Reply rep{group_, req.seq, std::move(result)};
  if (t_stage_sends != nullptr) {
    // Shard thread: collect behind this request's barrier ticket; the
    // barrier releases the send once every earlier ticket of the same
    // origin completed.
    t_stage_sends->emplace_back(req.origin, Buffer(rep.encode()));
    return;
  }
  if (buffer_replies_) {
    reply_buffer_[req.origin].push_back(std::move(rep));
  } else {
    send(req.origin, rep.encode());
  }
}

void Replica::send_request(ProcessId to, const Request& req) {
  send(to, encode_request(req));
}

void Replica::send_request(const std::vector<ProcessId>& dsts,
                           const Request& req) {
  const Buffer encoded{encode_request(req)};
  for (const ProcessId to : dsts) send(to, encoded);
}

// --- view change --------------------------------------------------------------

void Replica::arm_liveness_timer() {
  const Time period = env().profile().leader_timeout / 2;
  schedule_in(period, [this] {
    if (crashed()) return;
    on_liveness_check();
    arm_liveness_timer();
  });
}

void Replica::on_liveness_check() {
  const Time timeout = env().profile().leader_timeout;
  // Anti-entropy: credible evidence says the group decided past us, and the
  // earlier (rate-limited) transfer did not close the gap — retry. Under
  // pipelining, evidence ahead of next_instance_ is normal while we hold an
  // open consensus at the frontier (its decision is simply in flight); only
  // a missing frontier instance means we lost a proposal and must fetch it.
  if (max_seen_instance_ > next_instance_ && !open_.contains(next_instance_)) {
    request_state_transfer();
  }
  // View catch-up: peers operate in a later view (we missed its STOP
  // quorum, e.g. while partitioned). Broadcasting a STOP for that view makes
  // every up-to-date peer echo theirs, giving us the 2f+1 evidence to
  // install it; the leader then re-sends its SYNC (handle_stopdata).
  if (max_seen_view_ > view_) {
    stop_votes_[max_seen_view_].insert(id());
    broadcast(Stop{max_seen_view_}.encode());
  }
  if (view_active_) {
    if (pending_since_.empty()) return;
    Time oldest = now();
    for (const auto& [rid, info] : pending_since_) {
      oldest = std::min(oldest, info.suspicion);
    }
    if (now() - oldest > timeout) request_view_change(view_ + 1);
  } else {
    // Stuck synchronization phase (e.g. the new leader is also faulty).
    if (now() - view_change_started_ > timeout) {
      request_view_change(view_ + 1);
    }
  }
}

void Replica::request_view_change(std::uint64_t next_view) {
  // Re-broadcasting the same STOP is allowed (and needed): the first
  // attempt may have been lost to a partition, and peers answer every STOP
  // with a Frontier, which is how a lagging replica discovers it fell
  // behind rather than the leader having failed.
  if (next_view <= view_ || next_view < stop_requested_for_) return;
  stop_requested_for_ = next_view;
  stop_votes_[next_view].insert(id());
  broadcast(Stop{next_view}.encode());
  if (stop_votes_[next_view].size() >=
      static_cast<std::size_t>(info_.quorum())) {
    install_view(next_view);
  }
}

void Replica::handle_stop(const sim::WireMessage& msg, Reader& r) {
  const Stop s = Stop::decode(r);
  if (!info_.is_member(msg.from)) return;
  // Whatever we do with the STOP, tell the sender how far we are: a replica
  // that suspects a live system is usually one that fell behind (this is
  // our stand-in for Mod-SMaRt's request forwarding on STOP).
  send(msg.from, Frontier{view_, next_instance_}.encode());
  if (s.next_view <= view_) {
    // The sender lags behind our view; echo our STOP so it can collect the
    // f+1 evidence it needs to join the present. At most once per (peer,
    // view): the laggard needs one STOP from each of f+1 peers, and an
    // unconditional echo answers an echo with an echo — two replicas in the
    // same view with stop evidence for it ping-pong STOPs at wire speed.
    auto& echoed = stop_echoed_[msg.from];
    if ((s.next_view < view_ || stop_requested_for_ >= view_) &&
        echoed < view_) {
      echoed = view_;
      send(msg.from, Stop{view_}.encode());
    }
    return;
  }
  auto& voters = stop_votes_[s.next_view];
  voters.insert(msg.from);
  // f+1 STOPs prove at least one correct replica suspects: join.
  if (voters.size() >= static_cast<std::size_t>(f_ + 1) &&
      stop_requested_for_ < s.next_view) {
    stop_requested_for_ = s.next_view;
    voters.insert(id());
    broadcast(Stop{s.next_view}.encode());
  }
  if (voters.size() >= static_cast<std::size_t>(info_.quorum())) {
    install_view(s.next_view);
  }
}

void Replica::install_view(std::uint64_t next_view) {
  if (next_view <= view_) return;
  ++counters_.views_installed;
  view_ = next_view;
  view_active_ = false;
  view_change_started_ = now();
  // Any armed assembly window belongs to the old view; its timer must not
  // cut a batch under the new one.
  ++window_epoch_;
  window_armed_ = false;

  StopData sd;
  sd.next_view = next_view;
  sd.next_instance = next_instance_;
  for (const auto& [instance, oc] : open_) {
    if (oc.proposal && oc.sent_write) {
      sd.values.push_back(OpenValue{instance, oc.view, *oc.proposal});
    }
  }
  // Requests this replica cut into its own (now abandoned) open proposals
  // are re-queued at the front of pending_, in instance order, so the new
  // view can re-propose them; requests the new leader recovers via STOPDATA
  // anyway are deduplicated at decide time.
  Batch requeue;
  for (auto& [instance, oc] : open_) {
    if (!oc.proposal) continue;
    for (auto& req : *oc.proposal) {
      const auto pit = pending_since_.find(req.id());
      if (pit != pending_since_.end() && pit->second.inflight) {
        pit->second.inflight = false;
        requeue.push_back(std::move(req));
      }
    }
  }
  pending_.insert(pending_.begin(), std::make_move_iterator(requeue.begin()),
                  std::make_move_iterator(requeue.end()));
  open_.clear();

  const ProcessId leader = leader_of(next_view);
  if (leader == id()) {
    stopdata_[next_view][id()] = std::move(sd);
    leader_try_sync();
  } else {
    send(leader, sd.encode());
  }
}

void Replica::handle_stopdata(const sim::WireMessage& msg, Reader& r) {
  StopData sd = StopData::decode(r);
  if (!info_.is_member(msg.from)) return;
  if (leader_of(sd.next_view) != id()) return;
  if (sd.next_view < view_) return;
  // Reported open values must lie within the reporter's window, in strictly
  // increasing instance order; a malformed report (Byzantine) is dropped.
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < sd.values.size(); ++i) {
    const std::uint64_t inst = sd.values[i].instance;
    if (inst < sd.next_instance ||
        inst >= sd.next_instance + pipeline_depth() ||
        (i > 0 && inst <= prev)) {
      return;
    }
    prev = inst;
  }
  if (sd.next_view == view_ && view_active_) {
    // A replica that installed our view late still needs the SYNC to become
    // active; re-send the one we activated the view with.
    const auto it = sync_sent_.find(view_);
    if (it != sync_sent_.end()) send(msg.from, it->second.encode());
    return;
  }
  stopdata_[sd.next_view][msg.from] = std::move(sd);
  leader_try_sync();
}

void Replica::leader_try_sync() {
  if (view_active_ || leader_of(view_) != id()) return;
  auto it = stopdata_.find(view_);
  if (it == stopdata_.end()) return;
  auto& collected = it->second;
  if (!collected.contains(id())) return;  // must have installed ourselves
  if (collected.size() < static_cast<std::size_t>(info_.quorum())) return;

  std::uint64_t h = next_instance_;
  for (const auto& [pid, sd] : collected) h = std::max(h, sd.next_instance);

  if (next_instance_ < h) {
    // We are behind the quorum's decided frontier; catch up first, then the
    // state-transfer completion path re-invokes this function.
    request_state_transfer();
    return;
  }

  // Re-propose the whole surviving window [h, end). For each instance, pick
  // the safe value: a value decided in an earlier view had 2f+1 WRITErs, so
  // any 2f+1 STOPDATA contain at least f+1 reports of it — and no two
  // values can both collect f+1 reports out of 2f+1. Therefore: re-propose
  // the value with >= f+1 matching reports at that instance if one exists;
  // otherwise nothing was decided there and a fresh batch is safe (possibly
  // empty, a no-op filler keeping the re-proposed instances consecutive).
  // (Byzantine STOPDATA could lie; production protocols carry signed WRITE
  // certificates. Our fault specs do not include lying in STOPDATA — see
  // DESIGN.md §3.) Reported instances are bounded by each reporter's window
  // (validated in handle_stopdata), so end - h <= pipeline_depth.
  std::uint64_t end = h + 1;  // always re-propose at least instance h
  for (const auto& [pid, sd] : collected) {
    for (const auto& v : sd.values) {
      if (v.instance >= h) end = std::max(end, v.instance + 1);
    }
  }

  // Quorum members behind our frontier cannot accept re-proposals for
  // instances they have not decided yet, and f+1-matching state transfer
  // cannot serve history that only this replica holds (e.g. an instance
  // whose ACCEPT quorum completed at the old leader's side of a partition
  // alone). Prepend the decided batches [lo, h) so the SYNC itself carries
  // the laggards to the frontier; anything below our log base must still go
  // through snapshot transfer.
  std::uint64_t lo = h;
  for (const auto& [pid, sd] : collected) lo = std::min(lo, sd.next_instance);
  lo = std::max(lo, log_base_);

  std::vector<Batch> batches;
  batches.reserve(static_cast<std::size_t>(end - lo));
  for (std::uint64_t instance = lo; instance < h; ++instance) {
    batches.push_back(log_[static_cast<std::size_t>(instance - log_base_)]);
  }
  for (std::uint64_t instance = h; instance < end; ++instance) {
    Batch chosen;
    bool has_chosen = false;
    std::map<Digest, std::pair<std::size_t, const Batch*>> reports;
    for (const auto& [pid, sd] : collected) {
      for (const auto& v : sd.values) {
        if (v.instance != instance) continue;
        auto& entry = reports[batch_digest(v.value)];
        ++entry.first;
        entry.second = &v.value;
      }
    }
    for (const auto& [digest, entry] : reports) {
      if (entry.first >= static_cast<std::size_t>(f_ + 1)) {
        has_chosen = true;
        chosen = *entry.second;
        break;
      }
    }
    if (!has_chosen) chosen = cut_batch();  // same sizing as do_propose
    batches.push_back(std::move(chosen));
  }

  const Sync sync{view_, lo, h, batches};
  sync_sent_[view_] = sync;
  broadcast(sync.encode());
  view_active_ = true;
  for (std::uint64_t instance = h; instance < end; ++instance) {
    accept_proposal(view_, instance,
                    batches[static_cast<std::size_t>(instance - lo)]);
  }
  maybe_start_consensus();
}

void Replica::handle_sync(const sim::WireMessage& msg, Reader& r) {
  Sync s = Sync::decode(r);
  if (msg.from != leader_of(s.next_view)) return;
  if (s.next_view > view_) {
    max_seen_view_ = std::max(max_seen_view_, s.next_view);
    return;
  }
  if (s.next_view != view_) return;
  if (view_active_) return;
  if (s.batches.empty()) return;
  // The decided prefix / open window split must be well-formed and the
  // re-proposed window bounded by the pipeline depth (a Byzantine leader
  // could otherwise stretch either part arbitrarily).
  const std::uint64_t end = s.instance + s.batches.size();
  if (s.open_from < s.instance || s.open_from > end) return;
  if (end - s.open_from > pipeline_depth()) return;
  if (s.instance > next_instance_) {
    // Even the prefix starts past us: our gap reaches below the leader's
    // log base, which only a checkpoint snapshot can close.
    request_state_transfer();
    return;
  }
  if (end <= next_instance_) {
    view_active_ = true;  // we already decided all of it; just resume
    maybe_start_consensus();
    return;
  }
  view_active_ = true;
  for (std::size_t i = 0; i < s.batches.size(); ++i) {
    const std::uint64_t instance = s.instance + i;
    if (instance < next_instance_) continue;  // already decided here
    if (instance < s.open_from) {
      // Decided-history catch-up: apply directly, like a state-transfer
      // tail. Trusting the new leader here matches the trust the safe-value
      // rule already places in SYNC contents (DESIGN.md §3: view-change
      // messages do not lie in our fault model).
      decide(std::move(s.batches[i]));
      continue;
    }
    accept_proposal(view_, instance, std::move(s.batches[i]));
  }
  maybe_start_consensus();
}

void Replica::handle_frontier(const sim::WireMessage& msg, Reader& r) {
  const Frontier f = Frontier::decode(r);
  if (!info_.is_member(msg.from)) return;
  // A single claim cannot be trusted, but acting on it is safe: state
  // transfer applies nothing without f+1 matching responses, and the view
  // catch-up path needs 2f+1 STOPs. Worst case a Byzantine frontier costs
  // one rate-limited request.
  if (f.next_instance > next_instance_) {
    max_seen_instance_ = std::max(max_seen_instance_, f.next_instance);
    request_state_transfer();
  }
  if (f.view > view_) max_seen_view_ = std::max(max_seen_view_, f.view);
}

// --- state transfer -------------------------------------------------------------

void Replica::request_state_transfer() {
  if (last_state_request_ >= 0 &&
      now() - last_state_request_ < 500 * kMillisecond) {
    return;
  }
  last_state_request_ = now();
  ++counters_.state_transfers;
  state_responses_.clear();
  broadcast(StateRequest{next_instance_}.encode());
}

void Replica::handle_state_request(const sim::WireMessage& msg, Reader& r) {
  const StateRequest req = StateRequest::decode(r);
  // Served to anyone: standby replicas must be able to bootstrap before
  // they appear in the membership. (Responses are cheap and rate-limiting
  // abusers is a transport concern outside this simulation's scope.)
  if (next_instance_ <= req.from_instance) return;  // nothing to offer

  StateResponse resp;
  std::uint64_t from = req.from_instance;
  if (from < log_base_) {
    resp.has_snapshot = true;
    resp.snapshot_instance = log_base_;
    resp.snapshot = checkpoint_snapshot_;
    from = log_base_;
  }
  resp.first_instance = from;
  for (std::uint64_t i = from; i < next_instance_; ++i) {
    resp.batches.push_back(log_[i - log_base_]);
  }
  send(msg.from, resp.encode());
}

void Replica::handle_state_response(const sim::WireMessage& msg, Reader& r) {
  if (!info_.is_member(msg.from)) return;
  state_responses_[msg.from] = StateResponse::decode(r);
  try_apply_state();
}

void Replica::try_apply_state() {
  const auto needed = static_cast<std::size_t>(f_ + 1);
  if (state_responses_.size() < needed) return;

  // Step 1: if we are below every offered log, adopt a snapshot vouched by
  // f+1 identical copies.
  std::map<std::pair<std::uint64_t, Digest>, std::size_t> snapshot_votes;
  for (const auto& [pid, resp] : state_responses_) {
    if (!resp.has_snapshot || resp.snapshot_instance <= next_instance_)
      continue;
    const auto key =
        std::make_pair(resp.snapshot_instance, Sha256::hash(resp.snapshot));
    if (++snapshot_votes[key] >= needed) {
      for (const auto& [pid2, resp2] : state_responses_) {
        if (resp2.has_snapshot && resp2.snapshot_instance == key.first &&
            Sha256::hash(resp2.snapshot) == key.second) {
          // Restore replica-local durable state.
          restore_snapshot(resp2.snapshot);
          next_instance_ = key.first;
          log_base_ = key.first;
          log_.clear();
          checkpoint_snapshot_ = resp2.snapshot;
          checkpoint_instance_ = key.first;
          // Consensus instances left open below the restored frontier are
          // obsolete and must not block proposals for the new frontier.
          while (!open_.empty() && open_.begin()->first < next_instance_) {
            open_.erase(open_.begin());
          }
          break;
        }
      }
      break;
    }
  }

  // Step 2: adopt decided batches instance by instance, each backed by f+1
  // matching copies.
  bool progressed = true;
  while (progressed) {
    progressed = false;
    std::map<Digest, std::size_t> batch_votes;
    std::map<Digest, const Batch*> batch_by_digest;
    for (const auto& [pid, resp] : state_responses_) {
      const std::uint64_t idx_base = resp.first_instance;
      if (next_instance_ < idx_base) continue;
      const std::uint64_t offset = next_instance_ - idx_base;
      if (offset >= resp.batches.size()) continue;
      const Batch& candidate = resp.batches[offset];
      const Digest d = batch_digest(candidate);
      batch_by_digest[d] = &candidate;
      if (++batch_votes[d] >= needed) {
        decide(*batch_by_digest[d]);
        progressed = true;
        break;
      }
    }
  }

  // Catch-up may have landed us exactly below buffered out-of-order
  // decisions of our own window; apply them now.
  advance_decided();

  if (!view_active_ && leader_of(view_) == id()) leader_try_sync();
  maybe_start_consensus();
}

}  // namespace byzcast::bft
