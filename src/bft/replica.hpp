// One replica of a FIFO BFT atomic broadcast group (Mod-SMaRt style).
//
// Normal case: clients send authenticated Requests to all replicas; the
// leader of the current view runs sequential consensus instances, each over
// a batch of pending requests, with the PBFT-like PROPOSE/WRITE/ACCEPT
// pattern and 2f+1 quorums. Decided batches are appended to the log in
// instance order; requests then pass a deterministic per-origin FIFO
// hold-back and execute in the application.
//
// Leader failure: replicas that see pending requests starve broadcast STOP;
// on 2f+1 STOPs the view advances, replicas send STOPDATA (any value they
// WROTE for the open instance) to the new leader, which re-proposes a safe
// value via SYNC. Replicas that fall behind catch up with state transfer
// (f+1 matching responses; snapshot + log tail).
#pragma once

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bft/application.hpp"
#include "bft/fault.hpp"
#include "bft/message.hpp"
#include "common/metrics.hpp"
#include "sim/actor.hpp"
#include "sim/env.hpp"

namespace byzcast::bft {

/// Static description of one group, shared with clients and peers.
/// Membership is mutated only through set_replicas()/add_replica(), which
/// keep the hash index in sync; is_member never has to infer whether a
/// cached index is fresh (copies carry a consistent index with them).
class GroupInfo {
 public:
  GroupId id;
  int f = 1;

  /// Size 3f+1, vector index = replica index.
  [[nodiscard]] const std::vector<ProcessId>& replicas() const {
    return replicas_;
  }
  /// Replaces the whole membership and reindexes.
  void set_replicas(std::vector<ProcessId> replicas) {
    replicas_ = std::move(replicas);
    members_.clear();
    members_.insert(replicas_.begin(), replicas_.end());
  }
  /// Appends one replica (group construction) and indexes it.
  void add_replica(ProcessId p) {
    replicas_.push_back(p);
    members_.insert(p);
  }

  [[nodiscard]] int n() const { return static_cast<int>(replicas_.size()); }
  [[nodiscard]] int quorum() const { return 2 * f + 1; }
  [[nodiscard]] bool is_member(ProcessId p) const {
    return members_.contains(p);
  }

 private:
  std::vector<ProcessId> replicas_;
  std::unordered_set<ProcessId> members_;  // hash index over replicas_
};

class Replica final : public sim::Actor, public ReplicaContext {
 public:
  Replica(sim::ExecutionEnv& env, GroupId group, int f, int index,
          std::unique_ptr<Application> app, FaultSpec faults);

  /// Wires the full membership once all replicas of the group exist, and
  /// starts timers. Must be called exactly once before the simulation runs.
  void start(const GroupInfo& info);

  /// Starts this replica as a STANDBY: it knows the group's current
  /// membership but is not part of it. It becomes active when an ordered
  /// reconfiguration (learned via state transfer or live proposals) adds it
  /// to the membership.
  void start_standby(const GroupInfo& info);

  /// Authorizes `admin` to submit reconfiguration requests. Reconfiguration
  /// is disabled (every reconfig request rejected) until this is set.
  void set_admin(ProcessId admin) { admin_ = admin; }

  /// Current membership as seen by this replica (changes at reconfig).
  [[nodiscard]] const GroupInfo& current_membership() const { return info_; }
  [[nodiscard]] bool removed() const { return removed_; }

  // --- ReplicaContext ----------------------------------------------------
  [[nodiscard]] ProcessId self() const override { return id(); }
  [[nodiscard]] GroupId group() const override { return group_; }
  [[nodiscard]] int f() const override { return f_; }
  [[nodiscard]] Time now() const override { return Actor::now(); }
  [[nodiscard]] Rng& app_rng() override { return rng(); }
  void send_reply(const Request& req, Bytes result) override;
  void send_request(ProcessId to, const Request& req) override;
  void send_request(const std::vector<ProcessId>& dsts,
                    const Request& req) override;
  void consume_app_cpu(Time cost) override { consume_cpu(cost); }
  [[nodiscard]] const ExecTiming* exec_timing() const override {
    return executing_timed_ ? &cur_exec_timing_ : nullptr;
  }

  // --- introspection (tests, benchmarks) ---------------------------------
  [[nodiscard]] std::uint64_t decided_instances() const {
    return next_instance_;
  }
  [[nodiscard]] std::uint64_t executed_requests() const { return executed_; }
  [[nodiscard]] std::uint64_t view() const { return view_; }
  [[nodiscard]] bool is_leader() const;
  [[nodiscard]] const FaultSpec& faults() const { return faults_; }
  [[nodiscard]] Application& application() { return *app_; }
  /// Digest over the executed-request history (all correct replicas of a
  /// group must agree on it at quiescence).
  [[nodiscard]] Digest history_digest() const { return history_digest_; }

  /// Protocol-event counters for tests and benchmark reports.
  struct Counters {
    std::uint64_t views_installed = 0;
    std::uint64_t state_transfers = 0;    // requests actually sent
    std::uint64_t proposals_made = 0;     // consensus instances led
    std::uint64_t checkpoints_taken = 0;
    std::uint64_t rejected_requests = 0;  // failed admission checks
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

 protected:
  void on_message(const sim::WireMessage& msg) override;
  [[nodiscard]] Time service_cost(const sim::WireMessage& msg) const override;

 private:
  struct OpenConsensus {
    std::uint64_t instance = 0;
    std::uint64_t view = 0;
    std::optional<Batch> proposal;
    Digest digest{};
    bool sent_write = false;
    bool sent_accept = false;
    Time proposed_at = -1;      // proposal accepted here (span tracing)
    Time write_quorum_at = -1;  // 2f+1 WRITEs seen
  };

  /// Per-pending-request bookkeeping. `suspicion` drives leader suspicion
  /// and is reset whenever the group makes progress (a busy-but-live leader
  /// is not suspected for a long queue); `admitted` and the wire times are
  /// immutable admission facts kept for span tracing.
  struct AdmitInfo {
    Time suspicion = 0;
    Time admitted = 0;
    Time wire_sent = -1;
    Time wire_enqueued = -1;
    Time wire_svc_start = -1;
  };

  // votes per (instance, view, phase, digest) -> distinct voters
  struct VoteKey {
    std::uint64_t instance;
    std::uint64_t view;
    bool accept_phase;
    Digest digest;
    friend bool operator<(const VoteKey& a, const VoteKey& b) {
      if (a.instance != b.instance) return a.instance < b.instance;
      if (a.view != b.view) return a.view < b.view;
      if (a.accept_phase != b.accept_phase)
        return a.accept_phase < b.accept_phase;
      return a.digest < b.digest;
    }
  };

  [[nodiscard]] ProcessId leader_of(std::uint64_t view) const;
  /// Fans `payload` to every peer: one materialized buffer, N-1 ref bumps.
  void broadcast(const Buffer& payload);

  void handle_request(const sim::WireMessage& msg, Reader& r);
  void handle_propose(const sim::WireMessage& msg, Reader& r);
  void handle_vote(MsgType type, const sim::WireMessage& msg, Reader& r);
  void handle_stop(const sim::WireMessage& msg, Reader& r);
  void handle_stopdata(const sim::WireMessage& msg, Reader& r);
  void handle_sync(const sim::WireMessage& msg, Reader& r);
  void handle_frontier(const sim::WireMessage& msg, Reader& r);
  void handle_state_request(const sim::WireMessage& msg, Reader& r);
  void handle_state_response(const sim::WireMessage& msg, Reader& r);

  void admit_request(Request req, const sim::WireMessage* wire = nullptr);
  void maybe_start_consensus();
  void do_propose();
  /// `digest` is the precomputed digest of the batch's encoded form (from
  /// the wire slice or the leader's own encode); null means compute it here
  /// (cold paths: SYNC, view change).
  void accept_proposal(std::uint64_t view, std::uint64_t instance,
                       Batch batch, const Digest* digest = nullptr);
  void check_quorums();
  /// `proposed_at` / `write_quorum_at` carry the deciding instance's local
  /// consensus-phase times (-1 on the state-transfer path: no local run).
  void decide(Batch batch, Time proposed_at = -1, Time write_quorum_at = -1);
  void execute_batch(const Batch& batch);
  void deliver_fifo(const Request& req);
  void execute_one(const Request& req);
  void apply_reconfig(const Request& req);
  void maybe_checkpoint();
  [[nodiscard]] Bytes make_snapshot() const;
  void restore_snapshot(BytesView snapshot);

  void arm_liveness_timer();
  void on_liveness_check();
  void request_view_change(std::uint64_t next_view);
  void install_view(std::uint64_t next_view);
  void leader_try_sync();

  void request_state_transfer();
  void try_apply_state();

  // --- configuration ------------------------------------------------------
  GroupId group_;
  int f_;
  int index_;
  GroupInfo info_;  // valid after start()
  std::unique_ptr<Application> app_;
  FaultSpec faults_;
  bool started_ = false;
  bool standby_ = false;   // not (yet) part of the membership
  bool removed_ = false;   // reconfigured out of the group
  ProcessId admin_{};      // authorized reconfigurer (invalid = disabled)

  // --- ordering state ------------------------------------------------------
  std::uint64_t view_ = 0;
  bool view_active_ = true;
  std::uint64_t next_instance_ = 0;  // first undecided instance
  std::optional<OpenConsensus> open_;
  bool propose_scheduled_ = false;
  std::map<VoteKey, std::set<ProcessId>> votes_;
  std::deque<Request> pending_;
  std::unordered_map<MessageId, AdmitInfo> pending_since_;
  std::unordered_set<MessageId> decided_requests_;

  // --- decided log / checkpoints -------------------------------------------
  std::vector<Batch> log_;           // instances [log_base_, next_instance_)
  std::uint64_t log_base_ = 0;       // instance of log_[0]
  Bytes checkpoint_snapshot_;        // state as of instance log_base_
  std::uint64_t checkpoint_instance_ = 0;

  // --- FIFO delivery / execution -------------------------------------------
  std::unordered_map<ProcessId, std::uint64_t> fifo_next_;
  std::unordered_map<ProcessId, std::map<std::uint64_t, Request>> holdback_;
  std::uint64_t executed_ = 0;
  Digest history_digest_{};

  // --- view change ----------------------------------------------------------
  std::map<std::uint64_t, std::set<ProcessId>> stop_votes_;
  std::uint64_t stop_requested_for_ = 0;  // highest view we sent STOP for
  std::map<std::uint64_t, std::map<ProcessId, StopData>> stopdata_;
  std::map<std::uint64_t, Sync> sync_sent_;  // leader: SYNC per view led
  Time view_change_started_ = 0;

  // --- state transfer --------------------------------------------------------
  std::map<ProcessId, StateResponse> state_responses_;
  Time last_state_request_ = -1;
  Counters counters_;
  /// Highest instance for which we saw credible evidence (a leader proposal
  /// or f+1 votes); if it stays ahead of next_instance_, the periodic
  /// liveness check keeps requesting state (anti-entropy).
  std::uint64_t max_seen_instance_ = 0;
  /// Highest view observed in authenticated peer traffic; if it exceeds
  /// ours the liveness check runs the view catch-up path.
  std::uint64_t max_seen_view_ = 0;

  // --- observability ---------------------------------------------------------
  /// Lazily resolved handle into the simulation's MetricsRegistry (shared
  /// by all replicas of the group); null when metrics are off.
  Histogram* batch_size_hist_ = nullptr;
  /// Span-tracing state (populated only while a SpanLog is attached):
  /// admission + consensus timing frozen at decide time per request, read
  /// back when the request executes (FIFO holdback may defer execution to a
  /// later decide; the timing of the *deciding* instance must stick).
  std::unordered_map<MessageId, ExecTiming> exec_info_;
  ExecTiming cur_exec_timing_;
  bool executing_timed_ = false;
};

}  // namespace byzcast::bft
