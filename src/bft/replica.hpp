// One replica of a FIFO BFT atomic broadcast group (Mod-SMaRt style).
//
// Normal case: clients send authenticated Requests to all replicas; the
// leader of the current view runs consensus instances, each over a batch of
// pending requests, with the PBFT-like PROPOSE/WRITE/ACCEPT pattern and
// 2f+1 quorums. Up to Profile::pipeline_depth instances may be in flight at
// once (a window of open instances keyed by instance number); ACCEPT quorums
// that complete out of order are buffered and decisions are applied strictly
// in instance order. Decided batches are appended to the log; requests then
// pass a deterministic per-origin FIFO hold-back and execute in the
// application.
//
// Leader failure: replicas that see pending requests starve broadcast STOP;
// on 2f+1 STOPs the view advances, replicas send STOPDATA (every value they
// WROTE for the open instances of their window) to the new leader, which
// re-proposes the whole surviving window via SYNC. Replicas that fall behind
// catch up with state transfer (f+1 matching responses; snapshot + log
// tail).
#pragma once

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bft/application.hpp"
#include "bft/exec_barrier.hpp"
#include "bft/fault.hpp"
#include "bft/message.hpp"
#include "common/metrics.hpp"
#include "sim/actor.hpp"
#include "sim/env.hpp"
#include "sim/stages.hpp"

namespace byzcast::bft {

/// Static description of one group, shared with clients and peers.
/// Membership is mutated only through set_replicas()/add_replica(), which
/// keep the hash index in sync; is_member never has to infer whether a
/// cached index is fresh (copies carry a consistent index with them).
class GroupInfo {
 public:
  GroupId id;
  int f = 1;

  /// Size 3f+1, vector index = replica index.
  [[nodiscard]] const std::vector<ProcessId>& replicas() const {
    return replicas_;
  }
  /// Replaces the whole membership and reindexes.
  void set_replicas(std::vector<ProcessId> replicas) {
    replicas_ = std::move(replicas);
    members_.clear();
    members_.insert(replicas_.begin(), replicas_.end());
  }
  /// Appends one replica (group construction) and indexes it.
  void add_replica(ProcessId p) {
    replicas_.push_back(p);
    members_.insert(p);
  }

  [[nodiscard]] int n() const { return static_cast<int>(replicas_.size()); }
  [[nodiscard]] int quorum() const { return 2 * f + 1; }
  [[nodiscard]] bool is_member(ProcessId p) const {
    return members_.contains(p);
  }

 private:
  std::vector<ProcessId> replicas_;
  std::unordered_set<ProcessId> members_;  // hash index over replicas_
};

class Replica final : public sim::Actor, public ReplicaContext {
 public:
  Replica(sim::ExecutionEnv& env, GroupId group, int f, int index,
          std::unique_ptr<Application> app, FaultSpec faults);

  /// Wires the full membership once all replicas of the group exist, and
  /// starts timers. Must be called exactly once before the simulation runs.
  void start(const GroupInfo& info);

  /// Starts this replica as a STANDBY: it knows the group's current
  /// membership but is not part of it. It becomes active when an ordered
  /// reconfiguration (learned via state transfer or live proposals) adds it
  /// to the membership.
  void start_standby(const GroupInfo& info);

  /// Authorizes `admin` to submit reconfiguration requests. Reconfiguration
  /// is disabled (every reconfig request rejected) until this is set.
  void set_admin(ProcessId admin) { admin_ = admin; }

  /// Current membership as seen by this replica (changes at reconfig).
  [[nodiscard]] const GroupInfo& current_membership() const { return info_; }
  [[nodiscard]] bool removed() const { return removed_; }

  // --- ReplicaContext ----------------------------------------------------
  [[nodiscard]] ProcessId self() const override { return id(); }
  [[nodiscard]] GroupId group() const override { return group_; }
  [[nodiscard]] int f() const override { return f_; }
  [[nodiscard]] Time now() const override { return Actor::now(); }
  [[nodiscard]] Rng& app_rng() override { return rng(); }
  void send_reply(const Request& req, Bytes result) override;
  void send_request(ProcessId to, const Request& req) override;
  void send_request(const std::vector<ProcessId>& dsts,
                    const Request& req) override;
  void consume_app_cpu(Time cost) override { consume_cpu(cost); }
  [[nodiscard]] const ExecTiming* exec_timing() const override {
    return executing_timed_ ? &cur_exec_timing_ : nullptr;
  }

  // --- introspection (tests, benchmarks) ---------------------------------
  [[nodiscard]] std::uint64_t decided_instances() const {
    return next_instance_;
  }
  [[nodiscard]] std::uint64_t executed_requests() const { return executed_; }
  [[nodiscard]] std::uint64_t view() const { return view_; }
  [[nodiscard]] bool is_leader() const;
  [[nodiscard]] const FaultSpec& faults() const { return faults_; }
  [[nodiscard]] Application& application() { return *app_; }
  /// Digest over the executed-request history (all correct replicas of a
  /// group must agree on it at quiescence).
  [[nodiscard]] Digest history_digest() const { return history_digest_; }

  /// Protocol-event counters for tests and benchmark reports.
  struct Counters {
    std::uint64_t views_installed = 0;
    std::uint64_t state_transfers = 0;    // requests actually sent
    std::uint64_t proposals_made = 0;     // consensus instances led
    std::uint64_t checkpoints_taken = 0;
    std::uint64_t rejected_requests = 0;  // failed admission checks
    std::uint64_t early_batch_cuts = 0;   // backlog filled the target early
    std::uint64_t timer_batch_cuts = 0;   // assembly window elapsed
    std::uint64_t stale_window_drops = 0; // superseded/stale-view timer fires
    std::uint64_t buffered_decisions = 0; // ACCEPT quorums completed out of
                                          // order, applied later
    std::uint64_t staged_verifies = 0;    // messages pre-verified off-stage
    std::uint64_t deferred_execs = 0;     // requests sharded to exec stage
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

  /// Open (proposed, not yet applied) instances right now (tests).
  [[nodiscard]] std::size_t open_instances() const { return open_.size(); }
  /// High-water mark of concurrently open instances over the run.
  [[nodiscard]] std::size_t pipeline_high_water() const {
    return pipeline_high_water_;
  }
  /// Current adaptive batch-size target (0 until first arm).
  [[nodiscard]] std::uint32_t batch_target() const { return batch_target_; }
  /// Largest batch ever decided here (tests: both the do_propose and the
  /// view-change re-propose path must respect the cut_batch sizing rule).
  [[nodiscard]] std::size_t max_decided_batch() const {
    return max_decided_batch_;
  }

 protected:
  void on_message(const sim::WireMessage& msg) override;
  [[nodiscard]] Time service_cost(const sim::WireMessage& msg) const override;

  // --- stage-pipeline hooks (sim::Actor) -----------------------------------
  /// Protocol traffic whose MAC check + digest work is state-independent:
  /// REQUEST / PROPOSE / WRITE / ACCEPT. Control-plane messages (view
  /// change, state transfer) stay on the serial path — they are rare and
  /// their handling is entangled with view state.
  [[nodiscard]] bool stage_verifiable(
      const sim::WireMessage& msg) const override;
  /// The share of service_cost the verify stage absorbs for `msg` (clamped
  /// so the remaining serial cost never goes negative).
  [[nodiscard]] Time stage_verify_cost(
      const sim::WireMessage& msg) const override;
  /// Stamps the PROPOSE batch digest on the verify worker so handle_propose
  /// skips its SHA-256 over the batch slice.
  void stage_precompute(sim::WireMessage& msg) const override;

 private:
  struct OpenConsensus {
    std::uint64_t instance = 0;
    std::uint64_t view = 0;
    std::optional<Batch> proposal;
    Digest digest{};
    bool sent_write = false;
    bool sent_accept = false;
    /// ACCEPT quorum complete, waiting for earlier instances to apply
    /// (decisions are applied strictly in instance order).
    bool decided = false;
    Time proposed_at = -1;      // proposal accepted here (span tracing)
    Time write_quorum_at = -1;  // 2f+1 WRITEs seen
  };

  /// Per-pending-request bookkeeping. `suspicion` drives leader suspicion
  /// and is reset whenever the group makes progress (a busy-but-live leader
  /// is not suspected for a long queue); `admitted` and the wire times are
  /// immutable admission facts kept for span tracing. `inflight` marks
  /// requests this replica cut into one of its own open proposals (they left
  /// pending_ and must be re-queued if the view changes before they decide).
  struct AdmitInfo {
    Time suspicion = 0;
    Time admitted = 0;
    Time wire_sent = -1;
    Time wire_enqueued = -1;
    Time wire_svc_start = -1;
    bool inflight = false;
  };

  // votes per (instance, view, phase, digest) -> distinct voters
  struct VoteKey {
    std::uint64_t instance;
    std::uint64_t view;
    bool accept_phase;
    Digest digest;
    friend bool operator<(const VoteKey& a, const VoteKey& b) {
      if (a.instance != b.instance) return a.instance < b.instance;
      if (a.view != b.view) return a.view < b.view;
      if (a.accept_phase != b.accept_phase)
        return a.accept_phase < b.accept_phase;
      return a.digest < b.digest;
    }
  };

  [[nodiscard]] ProcessId leader_of(std::uint64_t view) const;
  /// Fans `payload` to every peer: one materialized buffer, N-1 ref bumps.
  void broadcast(const Buffer& payload);

  void handle_request(const sim::WireMessage& msg, Reader& r);
  void handle_propose(const sim::WireMessage& msg, Reader& r);
  void handle_vote(MsgType type, const sim::WireMessage& msg, Reader& r);
  void handle_stop(const sim::WireMessage& msg, Reader& r);
  void handle_stopdata(const sim::WireMessage& msg, Reader& r);
  void handle_sync(const sim::WireMessage& msg, Reader& r);
  void handle_frontier(const sim::WireMessage& msg, Reader& r);
  void handle_state_request(const sim::WireMessage& msg, Reader& r);
  void handle_state_response(const sim::WireMessage& msg, Reader& r);

  void admit_request(Request req, const sim::WireMessage* wire = nullptr);
  void maybe_start_consensus();
  void do_propose();
  /// Moves up to batch_max front entries of pending_ into a batch, marking
  /// them inflight. The single batch-sizing rule for both the normal propose
  /// path and the view-change re-propose path.
  [[nodiscard]] Batch cut_batch();
  /// Effective pipeline window (>= 1).
  [[nodiscard]] std::uint64_t pipeline_depth() const;
  /// Assembly-window length: batch_timeout, or cpu_propose_fixed when 0.
  [[nodiscard]] Time window_delay() const;
  /// `digest` is the precomputed digest of the batch's encoded form (from
  /// the wire slice or the leader's own encode); null means compute it here
  /// (cold paths: SYNC, view change).
  void accept_proposal(std::uint64_t view, std::uint64_t instance,
                       Batch batch, const Digest* digest = nullptr);
  void check_quorums();
  /// Applies buffered decisions in instance order from the window's front.
  void advance_decided();
  /// `proposed_at` / `write_quorum_at` carry the deciding instance's local
  /// consensus-phase times (-1 on the state-transfer path: no local run).
  void decide(Batch batch, Time proposed_at = -1, Time write_quorum_at = -1);
  void execute_batch(const Batch& batch);
  /// Sends buffered replies, one wire message per origin (a single reply
  /// stays a plain kReply; several coalesce into a kReplyBatch).
  void flush_replies();
  void deliver_fifo(const Request& req);
  void execute_one(const Request& req);
  /// The runtime exec-shard backend, or null (sim / no shards configured /
  /// ablated). Non-null means deferred work really runs on shard threads.
  [[nodiscard]] sim::StageBackend* exec_stage() const;
  /// True when the *simulated* exec-shard model is on: shards configured,
  /// not ablated, and no real backend (pure simulation).
  [[nodiscard]] bool sim_exec_model_on() const;
  void apply_reconfig(const Request& req);
  void maybe_checkpoint();
  [[nodiscard]] Bytes make_snapshot() const;
  void restore_snapshot(BytesView snapshot);

  void arm_liveness_timer();
  void on_liveness_check();
  void request_view_change(std::uint64_t next_view);
  void install_view(std::uint64_t next_view);
  void leader_try_sync();

  void request_state_transfer();
  void try_apply_state();

  // --- configuration ------------------------------------------------------
  GroupId group_;
  int f_;
  int index_;
  GroupInfo info_;  // valid after start()
  std::unique_ptr<Application> app_;
  FaultSpec faults_;
  bool started_ = false;
  bool standby_ = false;   // not (yet) part of the membership
  bool removed_ = false;   // reconfigured out of the group
  ProcessId admin_{};      // authorized reconfigurer (invalid = disabled)

  // --- ordering state ------------------------------------------------------
  std::uint64_t view_ = 0;
  bool view_active_ = true;
  std::uint64_t next_instance_ = 0;  // first unapplied instance
  /// Window of open instances (proposed and/or decided-but-buffered), keyed
  /// by instance number; all keys are >= next_instance_ and within
  /// pipeline_depth of it.
  std::map<std::uint64_t, OpenConsensus> open_;
  /// Leader assembly-window state. The armed timer is tagged with the view
  /// and an epoch; a firing whose epoch was bumped (early cut, view change)
  /// or whose view moved on is dropped instead of proposing under stale
  /// leadership assumptions.
  bool window_armed_ = false;
  std::uint64_t window_view_ = 0;
  std::uint64_t window_epoch_ = 0;
  Time window_armed_at_ = -1;
  std::uint32_t batch_target_ = 0;  // adaptive; 0 = set on first arm
  bool advancing_ = false;          // re-entrancy guard for advance_decided
  std::map<VoteKey, std::set<ProcessId>> votes_;
  /// Requests admitted but not yet cut into one of our own proposals (on
  /// followers: all admitted, undecided requests).
  std::deque<Request> pending_;
  std::unordered_map<MessageId, AdmitInfo> pending_since_;
  std::unordered_set<MessageId> decided_requests_;
  std::size_t pipeline_high_water_ = 0;
  std::size_t max_decided_batch_ = 0;

  // --- decided log / checkpoints -------------------------------------------
  std::vector<Batch> log_;           // instances [log_base_, next_instance_)
  std::uint64_t log_base_ = 0;       // instance of log_[0]
  Bytes checkpoint_snapshot_;        // state as of instance log_base_
  std::uint64_t checkpoint_instance_ = 0;

  // --- FIFO delivery / execution -------------------------------------------
  std::unordered_map<ProcessId, std::uint64_t> fifo_next_;
  std::unordered_map<ProcessId, std::map<std::uint64_t, Request>> holdback_;
  std::uint64_t executed_ = 0;
  Digest history_digest_{};
  /// While a decided batch executes, replies are buffered per origin and
  /// flushed as one message each afterwards (return-path batching).
  bool buffer_replies_ = false;
  std::map<ProcessId, std::vector<Reply>> reply_buffer_;

  // --- execute/reply stage (stage pipeline) --------------------------------
  /// Simulated shard model: per-shard CPU buckets for the current batch. The
  /// batch's serial execute cost is refunded down to the bucket makespan
  /// (max over shards) — the modeled wall-clock of parallel shards.
  std::vector<Time> exec_bucket_;
  Time exec_deferred_total_ = 0;  // deferred cost accumulated this batch
  /// Runtime backend: per-origin FIFO barrier releasing shard-produced
  /// replies in delivery order (lazily created on first deferred request).
  std::unique_ptr<ExecBarrier> exec_barrier_;

  // --- view change ----------------------------------------------------------
  std::map<std::uint64_t, std::set<ProcessId>> stop_votes_;
  std::uint64_t stop_requested_for_ = 0;  // highest view we sent STOP for
  /// Highest view whose STOP we echoed back to each peer (handle_stop's
  /// help-the-laggard path). One echo per (peer, view) is enough for the
  /// laggard's f+1 evidence; unbounded echoes ping-pong forever once two
  /// current replicas both hold stop evidence for the view they occupy.
  std::unordered_map<ProcessId, std::uint64_t> stop_echoed_;
  std::map<std::uint64_t, std::map<ProcessId, StopData>> stopdata_;
  std::map<std::uint64_t, Sync> sync_sent_;  // leader: SYNC per view led
  Time view_change_started_ = 0;

  // --- state transfer --------------------------------------------------------
  std::map<ProcessId, StateResponse> state_responses_;
  Time last_state_request_ = -1;
  Counters counters_;
  /// Highest instance for which we saw credible evidence (a leader proposal
  /// or f+1 votes); if it stays ahead of next_instance_, the periodic
  /// liveness check keeps requesting state (anti-entropy).
  std::uint64_t max_seen_instance_ = 0;
  /// Highest view observed in authenticated peer traffic; if it exceeds
  /// ours the liveness check runs the view catch-up path.
  std::uint64_t max_seen_view_ = 0;

  // --- observability ---------------------------------------------------------
  /// Lazily resolved handle into the simulation's MetricsRegistry (shared
  /// by all replicas of the group); null when metrics are off.
  Histogram* batch_size_hist_ = nullptr;
  /// Span-tracing state (populated only while a SpanLog is attached):
  /// admission + consensus timing frozen at decide time per request, read
  /// back when the request executes (FIFO holdback may defer execution to a
  /// later decide; the timing of the *deciding* instance must stick).
  std::unordered_map<MessageId, ExecTiming> exec_info_;
  ExecTiming cur_exec_timing_;
  bool executing_timed_ = false;
};

}  // namespace byzcast::bft
