#!/usr/bin/env python3
"""Validate a BENCH_vertical.json artifact (schema "byzcast-vertical-v1").

Usage:
    check_vertical.py BENCH_VERTICAL_JSON [--min-ratio 1.25]
                      [--require-breakdown]

The file is written by bench_vertical. Checks:

  * the document parses, declares the expected schema, and carries a
    non-empty curves array whose FIRST curve is the serial baseline
    (workers == 0, stage_pipeline_off == true);
  * every curve's points are sorted strictly by offered rate and carry the
    full numeric record; no point tripped invariant monitors or overflowed
    its sample capacity;
  * the serial curve and the widest staged curve both found a knee, and no
    staged knee sits below the serial baseline's (beyond one bisection step
    of slack);
  * the headline gate: knee(w=4, or the widest staged curve when w=4 is
    absent) >= --min-ratio x knee(serial), default 1.25;
  * when the cpu_breakdown block is present (and always with
    --require-breakdown), the staged p50 cpu component is strictly below
    the serial one.

Exits nonzero with a message on each failure, so CI can gate on it.
"""

import json
import sys

FAILURES = 0

POINT_NUM_FIELDS = (
    "offered",
    "throughput",
    "goodput_ratio",
    "p50_ms",
    "p99_ms",
    "completed",
    "monitor_violations",
    "sample_overflow",
)


def fail(msg):
    global FAILURES
    FAILURES += 1
    print(f"FAIL: {msg}")


def require(cond, msg):
    if not cond:
        fail(msg)
    return cond


def check_point(pt, where):
    if not require(isinstance(pt, dict), f"{where}: not an object"):
        return None
    for key in POINT_NUM_FIELDS:
        if not require(
            isinstance(pt.get(key), (int, float)) and not isinstance(pt.get(key), bool),
            f"{where}.{key}: missing or not a number",
        ):
            return None
    require(isinstance(pt.get("saturated"), bool), f"{where}.saturated: missing or not a bool")
    require(pt["offered"] > 0, f"{where}: offered rate must be positive")
    require(pt["completed"] > 0, f"{where}: completed nothing")
    require(pt["monitor_violations"] == 0, f"{where}: {pt['monitor_violations']} invariant violations")
    require(pt["sample_overflow"] == 0, f"{where}: {pt['sample_overflow']} samples overflowed capacity")
    require(pt["goodput_ratio"] <= 1.05, f"{where}: goodput {pt['goodput_ratio']:.3f} exceeds offered")
    return pt


def check_curve(curve, where):
    if not require(isinstance(curve, dict), f"{where}: not an object"):
        return
    require(isinstance(curve.get("label"), str) and curve.get("label"), f"{where}.label: missing")
    require(isinstance(curve.get("workers"), (int, float)), f"{where}.workers: missing")
    points = curve.get("points")
    if not require(isinstance(points, list) and points, f"{where}.points: missing or empty"):
        return
    checked = [p for i, pt in enumerate(points)
               if (p := check_point(pt, f"{where}.points[{i}]")) is not None]
    offered = [pt["offered"] for pt in checked]
    require(offered == sorted(offered) and len(set(offered)) == len(offered),
            f"{where}: points not strictly sorted by offered rate")
    if curve.get("knee_found"):
        knee = curve.get("knee")
        if require(isinstance(knee, dict), f"{where}.knee: missing despite knee_found"):
            check_point(knee, f"{where}.knee")
            require(knee.get("saturated") is True, f"{where}.knee: knee point not saturated")


def knee_of(curve):
    if curve and curve.get("knee_found") and isinstance(curve.get("knee"), dict):
        return curve["knee"].get("offered")
    return None


def main():
    args = list(sys.argv[1:])
    min_ratio = 1.25
    if "--min-ratio" in args:
        i = args.index("--min-ratio")
        try:
            min_ratio = float(args[i + 1])
        except (IndexError, ValueError):
            print("usage: check_vertical.py BENCH_VERTICAL_JSON [--min-ratio R] [--require-breakdown]")
            return 2
        del args[i : i + 2]
    require_breakdown = "--require-breakdown" in args
    if require_breakdown:
        args.remove("--require-breakdown")
    if len(args) != 1:
        print("usage: check_vertical.py BENCH_VERTICAL_JSON [--min-ratio R] [--require-breakdown]")
        return 2

    try:
        with open(args[0]) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {args[0]}: {e}")
        return 1

    require(doc.get("schema") == "byzcast-vertical-v1", f"schema: {doc.get('schema')!r}")
    require(isinstance(doc.get("name"), str) and doc.get("name"), "name: missing")
    curves = doc.get("curves")
    if not require(isinstance(curves, list) and curves, "curves: missing or empty"):
        return 1
    for i, curve in enumerate(curves):
        check_curve(curve, f"curves[{i}]")

    serial = curves[0] if isinstance(curves[0], dict) else {}
    require(serial.get("workers") == 0, "curves[0]: first curve must be the serial baseline (workers=0)")
    require(serial.get("stage_pipeline_off") is True,
            "curves[0]: serial baseline must run the stage_pipeline_off ablation")

    staged = None
    for curve in curves[1:]:
        if isinstance(curve, dict) and curve.get("workers") == 4:
            staged = curve
    if staged is None and len(curves) > 1 and isinstance(curves[-1], dict):
        staged = curves[-1]

    base_knee = knee_of(serial)
    require(base_knee is not None, "serial baseline found no knee")
    if staged is not None:
        staged_knee = knee_of(staged)
        require(staged_knee is not None, f"staged curve {staged.get('label')!r} found no knee")
        if base_knee is not None and staged_knee is not None:
            ratio = staged_knee / base_knee
            require(
                ratio >= min_ratio,
                f"vertical scaling gate: knee({staged.get('label')}) / knee(serial) "
                f"= {staged_knee:.0f}/{base_knee:.0f} = {ratio:.2f}x < {min_ratio}x",
            )
            if ratio >= min_ratio:
                print(f"knee({staged.get('label')}) = {staged_knee:.0f} msg/s, "
                      f"serial = {base_knee:.0f} msg/s: {ratio:.2f}x")
    if base_knee is not None:
        for curve in curves[1:]:
            k = knee_of(curve)
            if k is not None:
                require(k >= base_knee / 1.2,
                        f"{curve.get('label')}: knee {k:.0f} below serial baseline {base_knee:.0f}")

    breakdown = doc.get("cpu_breakdown")
    if require_breakdown:
        require(isinstance(breakdown, dict), "cpu_breakdown: missing (span-traced pair did not run)")
    if isinstance(breakdown, dict):
        s = breakdown.get("serial", {})
        t = breakdown.get("staged", {})
        if require(
            isinstance(s.get("cpu_p50_ms"), (int, float)) and isinstance(t.get("cpu_p50_ms"), (int, float)),
            "cpu_breakdown: serial/staged cpu_p50_ms missing",
        ):
            require(s.get("n", 0) > 0 and t.get("n", 0) > 0,
                    "cpu_breakdown: no complete traced messages")
            require(
                t["cpu_p50_ms"] < s["cpu_p50_ms"],
                f"cpu component did not shrink: serial {s['cpu_p50_ms']:.3f} ms, "
                f"staged {t['cpu_p50_ms']:.3f} ms",
            )

    if FAILURES == 0:
        print(f"OK: {args[0]} ({len(curves)} curves)")
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main())
