#!/usr/bin/env python3
"""Plots the CSV files emitted by the benchmark binaries under bench_csv/.

Usage:
    python3 tools/plot_benches.py [bench_csv_dir] [output_dir]

Produces one PNG per CSV: CDFs as step plots, series tables as grouped line
charts. Requires matplotlib; degrades to a listing when it is missing.
"""
import csv
import os
import sys


def load(path):
    with open(path, newline="") as fh:
        rows = list(csv.reader(fh))
    return rows[0], rows[1:]


def main():
    src = sys.argv[1] if len(sys.argv) > 1 else "bench_csv"
    dst = sys.argv[2] if len(sys.argv) > 2 else "bench_plots"
    if not os.path.isdir(src):
        print(f"no {src}/ directory — run the bench binaries first")
        return 1
    files = sorted(f for f in os.listdir(src) if f.endswith(".csv"))
    if not files:
        print(f"no CSV files in {src}/")
        return 1

    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not installed; CSV files available:")
        for f in files:
            print(" ", os.path.join(src, f))
        return 0

    os.makedirs(dst, exist_ok=True)
    for name in files:
        header, rows = load(os.path.join(src, name))
        if not rows:
            continue
        fig, ax = plt.subplots(figsize=(6, 4))
        if header[:2] == ["latency_ms", "cdf"]:
            xs = [float(r[0]) for r in rows]
            ys = [float(r[1]) for r in rows]
            ax.step(xs, ys, where="post")
            ax.set_xlabel("latency (ms)")
            ax.set_ylabel("CDF")
            ax.set_ylim(0, 1.02)
        else:
            # Series table: first column is x, numeric columns are lines.
            xs = list(range(len(rows)))
            ax.set_xticks(xs)
            ax.set_xticklabels([r[0] for r in rows])
            for col in range(1, len(header)):
                try:
                    ys = [float(str(r[col]).split()[0]) for r in rows]
                except (ValueError, IndexError):
                    continue
                ax.plot(xs, ys, marker="o", label=header[col])
            ax.set_xlabel(header[0])
            ax.legend(fontsize=8)
        ax.set_title(name.replace(".csv", ""))
        ax.grid(True, alpha=0.3)
        out = os.path.join(dst, name.replace(".csv", ".png"))
        fig.tight_layout()
        fig.savefig(out, dpi=120)
        plt.close(fig)
        print("wrote", out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
