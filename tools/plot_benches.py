#!/usr/bin/env python3
"""Plots the CSV files emitted by the benchmark binaries under bench_csv/.

Usage:
    python3 tools/plot_benches.py [bench_csv_dir] [output_dir]

Produces one PNG per CSV: CDFs as step plots, series tables as grouped line
charts. Also parses the *_metrics.json observability sidecars (summaries,
per-group a-delivery counters, CPU-busy / queue-depth timeseries, example
multi-hop trace) and plots the timeseries. Requires matplotlib; degrades to
a listing when it is missing.
"""
import csv
import json
import os
import sys


def load(path):
    with open(path, newline="") as fh:
        rows = list(csv.reader(fh))
    return rows[0], rows[1:]


def load_sidecar(path):
    with open(path) as fh:
        return json.load(fh)


def summarize_sidecar(name, doc):
    """Prints a compact human summary of one *_metrics.json sidecar."""
    print(f"\n{name}:")
    summary = doc.get("summary", {})
    if summary:
        thr = summary.get("throughput")
        lat = summary.get("latency_mean_ms")
        print(f"  throughput: {thr:.0f} msg/s, mean latency {lat:.2f} ms"
              if thr is not None and lat is not None else f"  summary: {summary}")
    metrics = doc.get("metrics", {})
    counters = metrics.get("counters", {})
    adeliv = {k: v for k, v in counters.items()
              if k.startswith("group.a_deliveries.")}
    if adeliv:
        parts = ", ".join(f"{k.rsplit('.', 1)[-1]}={v}"
                          for k, v in sorted(adeliv.items()))
        print(f"  a-deliveries per group: {parts}")
    gauges = metrics.get("gauges", {})
    busy = {k: v for k, v in gauges.items()
            if k.startswith("replica.cpu_busy_mean.")}
    if busy:
        mean = sum(busy.values()) / len(busy)
        peak = max(busy.values())
        print(f"  replica CPU busy: mean {mean:.1%}, peak {peak:.1%} "
              f"({len(busy)} replicas)")
    trace = doc.get("trace", {})
    hops = (trace.get("example_multi_hop") or {}).get("hops", [])
    if hops:
        path = " -> ".join(f"{h['event']}@{h['group']}" for h in hops)
        print(f"  example trace ({len(hops)} hops): {path}")
    dropped = trace.get("events_dropped", 0)
    if dropped:
        print(f"  WARNING: {dropped} trace events dropped (capacity)")


def find_bench_json(src, name):
    """Locates a BENCH_*.json (written by bench_runtime_throughput) next to
    the CSV dir or in the working directory."""
    for candidate in (os.path.join(src, name), name):
        if os.path.isfile(candidate):
            try:
                return load_sidecar(candidate)
            except (json.JSONDecodeError, OSError) as err:
                print(f"skipping malformed {candidate}: {err}")
    return None


def summarize_runtime_bench(doc):
    configs = doc.get("configs", [])
    print("\nBENCH_runtime.json (wall-clock backend):")
    for c in configs:
        print(f"  {c.get('groups')} groups {c.get('pattern'):<5} "
              f"{c.get('workers')} workers: "
              f"{c.get('throughput_msgs_s', 0):.0f} msg/s, "
              f"mean {c.get('latency_mean_ms', 0):.2f} ms, "
              f"p95 {c.get('latency_p95_ms', 0):.2f} ms")


def summarize_wire_bench(doc):
    """BENCH_wire.json: before/after throughput of the zero-copy wire fabric
    plus the property-checker verdict per config."""
    configs = doc.get("configs", [])
    print(f"\nBENCH_wire.json (zero-copy wire fabric, baseline: "
          f"{doc.get('baseline_source', '?')}):")
    for c in configs:
        after = c.get("throughput_after_msgs_s", 0.0)
        before = c.get("throughput_before_msgs_s")
        pct = c.get("improvement_pct")
        ok = c.get("properties_ok")
        delta = (f"{before:.0f} -> {after:.0f} msg/s ({pct:+.1f}%)"
                 if before is not None and pct is not None
                 else f"{after:.0f} msg/s (no baseline)")
        verdict = "properties OK" if ok else \
            f"PROPERTIES VIOLATED: {c.get('properties_error', '?')}"
        print(f"  {c.get('groups')} groups {c.get('pattern'):<5} "
              f"{delta}, {verdict}")


def plot_wire_bench(doc, dst, plt):
    """Grouped before/after bars, one pair per (groups, pattern) config."""
    configs = [c for c in doc.get("configs", [])
               if c.get("throughput_before_msgs_s") is not None]
    if not configs:
        return
    labels = [f"{c['groups']}g {c['pattern']}" for c in configs]
    before = [c["throughput_before_msgs_s"] for c in configs]
    after = [c["throughput_after_msgs_s"] for c in configs]
    xs = list(range(len(configs)))
    fig, ax = plt.subplots(figsize=(6, 4))
    width = 0.38
    ax.bar([x - width / 2 for x in xs], before, width, label="before",
           color="gray")
    bars = ax.bar([x + width / 2 for x in xs], after, width, label="after")
    for x, bar, c in zip(xs, bars, configs):
        pct = c.get("improvement_pct")
        if pct is not None:
            ax.annotate(f"{pct:+.0f}%", (bar.get_x() + bar.get_width() / 2,
                                         bar.get_height()),
                        ha="center", va="bottom", fontsize=8)
    ax.set_xticks(xs)
    ax.set_xticklabels(labels)
    ax.set_ylabel("wall-clock msg/s")
    ax.set_title("zero-copy wire fabric: before/after throughput")
    ax.legend(fontsize=8)
    ax.grid(True, axis="y", alpha=0.3)
    out = os.path.join(dst, "wire_fabric_before_after.png")
    fig.tight_layout()
    fig.savefig(out, dpi=120)
    plt.close(fig)
    print("wrote", out)


def plot_runtime_bench(doc, src, dst, plt):
    """Wall-clock throughput vs groups, with the simulated LAN scalability
    curve (fig4) on a twin axis when its CSV is present — shapes compare,
    absolute units differ (real threads vs calibrated simulation)."""
    configs = doc.get("configs", [])
    series = {}
    for c in configs:
        series.setdefault(c.get("pattern", "?"), []).append(
            (c.get("groups", 0), c.get("throughput_msgs_s", 0.0)))
    if not series:
        return
    fig, ax = plt.subplots(figsize=(6, 4))
    for pattern in sorted(series):
        points = sorted(series[pattern])
        ax.plot([p[0] for p in points], [p[1] for p in points], marker="o",
                label=f"runtime {pattern}")
    ax.set_xlabel("target groups")
    ax.set_ylabel("wall-clock msg/s")
    ax.grid(True, alpha=0.3)

    sim_csv = os.path.join(src, "fig4a_local.csv")
    if os.path.isfile(sim_csv):
        header, rows = load(sim_csv)
        if rows and "byzcast" in header:
            col = header.index("byzcast")
            xs = [float(r[0]) for r in rows]
            ys = [float(r[col]) for r in rows]
            ax2 = ax.twinx()
            ax2.plot(xs, ys, marker="s", linestyle="--", color="gray",
                     label="sim local (fig4)")
            ax2.set_ylabel("simulated msg/s")
            ax2.legend(fontsize=8, loc="lower right")
    ax.legend(fontsize=8, loc="upper left")
    ax.set_title("runtime backend throughput")
    out = os.path.join(dst, "runtime_throughput_bench.png")
    fig.tight_layout()
    fig.savefig(out, dpi=120)
    plt.close(fig)
    print("wrote", out)


def summarize_span_sidecar(name, doc):
    """Compact summary of one *_spans.json causal-trace sidecar."""
    print(f"\n{name} (schema {doc.get('schema')}):")
    msgs = doc.get("messages", [])
    complete = sum(1 for m in msgs if m.get("complete"))
    print(f"  {len(msgs)} traced messages ({complete} complete), "
          f"{doc.get('spans_recorded')} spans "
          f"(dropped {doc.get('spans_dropped')})")
    for cls in ("local", "global"):
        agg = doc.get("aggregates", {}).get(cls, {})
        if not agg.get("n"):
            continue
        e2e = agg.get("end_to_end", {})
        print(f"  {cls:<6} n={agg['n']}: e2e p50 "
              f"{e2e.get('p50_ns', 0) / 1e6:.2f} ms, "
              f"p99 {e2e.get('p99_ns', 0) / 1e6:.2f} ms")
    monitor = doc.get("monitor")
    if monitor is not None:
        total = monitor.get("violations_total", 0)
        verdict = "OK" if total == 0 else f"{total} VIOLATIONS"
        print(f"  invariant monitors: {verdict}")


def summarize_trace_bench(doc):
    """BENCH_trace.json: span-tracing overhead off / sampled / full."""
    print("\nBENCH_trace.json (tracing overhead, wall-clock backend):")
    for c in doc.get("configs", []):
        over = c.get("overhead_pct")
        extra = f", overhead {over:+.1f}%" if over is not None else ""
        print(f"  {c.get('mode'):<8} (every {c.get('sample_every')}): "
              f"{c.get('throughput_msgs_s', 0):.0f} msg/s, "
              f"{c.get('spans_recorded', 0)} spans{extra}")
    print(f"  knob: {doc.get('knob', '?')}")


def summarize_pipeline_bench(doc):
    """BENCH_pipeline.json: consensus-pipelining depth x batch-timeout sweep
    against the sequential depth-1 ablation (sim WAN, open loop)."""
    rate = doc.get("open_loop_rate_msgs_s", 0)
    print(f"\nBENCH_pipeline.json (pipelining sweep, sim WAN, "
          f"offered {rate:.0f} msg/s):")
    for c in doc.get("configs", []):
        queue = c.get("global", {}).get("queueing_p50_ns", 0) / 1e6
        bad = c.get("monitor_violations", 0)
        verdict = "" if bad == 0 else f", {bad} MONITOR VIOLATIONS"
        print(f"  depth {c.get('pipeline_depth')} window "
              f"{c.get('batch_timeout_us') or 'preset':>6}: "
              f"{c.get('throughput_msgs_s', 0):.0f} msg/s, "
              f"p50 {c.get('latency_p50_ms', 0):.0f} ms, "
              f"global queueing p50 {queue:.0f} ms{verdict}")


def plot_pipeline_bench(doc, dst, plt):
    """Throughput vs pipeline depth (one line per assembly window), with the
    global-class queueing p50 on a twin axis — the component the deeper
    window is supposed to collapse."""
    series = {}
    for c in doc.get("configs", []):
        key = c.get("batch_timeout_us") or "preset"
        series.setdefault(key, []).append(
            (c.get("pipeline_depth", 0), c.get("throughput_msgs_s", 0.0),
             c.get("global", {}).get("queueing_p50_ns", 0) / 1e6))
    if not series:
        return
    fig, ax = plt.subplots(figsize=(6, 4))
    ax2 = ax.twinx()
    for key in sorted(series, key=str):
        points = sorted(series[key])
        label = f"window {key}" + ("" if key == "preset" else "us")
        ax.plot([p[0] for p in points], [p[1] for p in points], marker="o",
                label=label)
        ax2.plot([p[0] for p in points], [p[2] for p in points], marker="x",
                 linestyle="--", alpha=0.6)
    rate = doc.get("open_loop_rate_msgs_s")
    if rate:
        ax.axhline(rate, color="gray", linewidth=0.8, linestyle=":")
        ax.annotate("offered", (1, rate), fontsize=7, va="bottom")
    ax.set_xscale("log", base=2)
    ax.set_xlabel("pipeline depth (1 = sequential ablation)")
    ax.set_ylabel("msg/s")
    ax2.set_ylabel("global queueing p50 (ms, dashed)")
    ax.set_title("consensus pipelining: WAN throughput vs depth")
    ax.legend(fontsize=8, loc="lower right")
    ax.grid(True, alpha=0.3)
    out = os.path.join(dst, "pipeline_depth_sweep.png")
    fig.tight_layout()
    fig.savefig(out, dpi=120)
    plt.close(fig)
    print("wrote", out)


def summarize_sweep_bench(doc):
    """BENCH_sweep.json: latency-vs-offered-load curves with the detected
    saturation knee per curve (baseline + per-optimization ablations)."""
    print(f"\nBENCH_sweep.json (offered-load sweep '{doc.get('name', '?')}', "
          f"{doc.get('protocol', '?')} {doc.get('environment', '?')}):")
    for curve in doc.get("curves", []):
        points = curve.get("points", [])
        if curve.get("knee_found") and isinstance(curve.get("knee"), dict):
            knee = curve["knee"]
            verdict = (f"knee {knee.get('offered', 0):.0f} msg/s "
                       f"(p50 {knee.get('p50_ms', 0):.1f} ms, "
                       f"p99 {knee.get('p99_ms', 0):.1f} ms)")
        else:
            verdict = (f"no knee through "
                       f"{curve.get('max_unsaturated_rate', 0):.0f} msg/s")
        bad = sum(p.get("monitor_violations", 0) for p in points)
        extra = "" if bad == 0 else f", {bad} MONITOR VIOLATIONS"
        print(f"  {curve.get('label', '?'):<16} {len(points)} points, "
              f"{verdict}{extra}")


def plot_sweep_bench(doc, dst, plt):
    """p99 latency vs offered load, one line per curve, each detected knee
    annotated — the latency wall that defines sustainable throughput."""
    curves = [c for c in doc.get("curves", []) if c.get("points")]
    if not curves:
        return
    fig, ax = plt.subplots(figsize=(6, 4))
    for curve in curves:
        points = sorted(curve["points"], key=lambda p: p.get("offered", 0))
        xs = [p.get("offered", 0) for p in points]
        ys = [p.get("p99_ms", 0) for p in points]
        (line,) = ax.plot(xs, ys, marker="o", markersize=3,
                          label=curve.get("label", "?"))
        if curve.get("knee_found") and isinstance(curve.get("knee"), dict):
            knee = curve["knee"]
            kx, ky = knee.get("offered", 0), knee.get("p99_ms", 0)
            ax.scatter([kx], [ky], marker="D", s=45, zorder=5,
                       color=line.get_color(), edgecolors="black")
            ax.annotate(f"knee {kx:.0f}/s", (kx, ky), fontsize=7,
                        xytext=(4, 6), textcoords="offset points")
    ax.set_yscale("log")
    ax.set_xlabel("offered load (msg/s)")
    ax.set_ylabel("p99 latency (ms, log)")
    ax.set_title(f"offered-load sweep: {doc.get('name', '?')} "
                 f"({doc.get('environment', '?')})")
    ax.legend(fontsize=8)
    ax.grid(True, alpha=0.3)
    out = os.path.join(dst, "sweep_knee.png")
    fig.tight_layout()
    fig.savefig(out, dpi=120)
    plt.close(fig)
    print("wrote", out)


def summarize_vertical_bench(doc):
    """BENCH_vertical.json: one group's saturation knee vs stage-pipeline
    width (serial = stage_pipeline_off ablation), plus the span-traced
    cpu-component pair."""
    print(f"\nBENCH_vertical.json (vertical scaling '{doc.get('name', '?')}', "
          f"{doc.get('protocol', '?')} {doc.get('environment', '?')}, "
          f"{doc.get('num_groups', '?')} group(s)):")
    for curve in doc.get("curves", []):
        points = curve.get("points", [])
        if curve.get("knee_found") and isinstance(curve.get("knee"), dict):
            knee = curve["knee"]
            verdict = (f"knee {knee.get('offered', 0):.0f} msg/s "
                       f"(p99 {knee.get('p99_ms', 0):.1f} ms)")
        else:
            verdict = (f"no knee through "
                       f"{curve.get('max_unsaturated_rate', 0):.0f} msg/s")
        bad = sum(p.get("monitor_violations", 0) for p in points)
        extra = "" if bad == 0 else f", {bad} MONITOR VIOLATIONS"
        print(f"  {curve.get('label', '?'):<26} {len(points)} points, "
              f"{verdict}{extra}")
    bd = doc.get("cpu_breakdown")
    if isinstance(bd, dict):
        s, t = bd.get("serial", {}), bd.get("staged", {})
        print(f"  cpu p50 at {bd.get('rate', 0):.0f} msg/s: serial "
              f"{s.get('cpu_p50_ms', 0):.3f} ms -> "
              f"{bd.get('staged_label', 'staged')} "
              f"{t.get('cpu_p50_ms', 0):.3f} ms")


def plot_vertical_bench(doc, dst, plt):
    """Two panels: p99 vs offered load per stage width (knees annotated),
    and the span-traced p50 component stack serial vs staged — the cpu
    share the verify/exec stages are supposed to carve off the order
    stage's critical path."""
    curves = [c for c in doc.get("curves", []) if c.get("points")]
    if not curves:
        return
    bd = doc.get("cpu_breakdown") if isinstance(doc.get("cpu_breakdown"),
                                                dict) else None
    fig, axes = plt.subplots(1, 2 if bd else 1,
                             figsize=(10 if bd else 6, 4))
    ax = axes[0] if bd else axes
    for curve in curves:
        points = sorted(curve["points"], key=lambda p: p.get("offered", 0))
        xs = [p.get("offered", 0) for p in points]
        ys = [p.get("p99_ms", 0) for p in points]
        (line,) = ax.plot(xs, ys, marker="o", markersize=3,
                          label=curve.get("label", "?"))
        if curve.get("knee_found") and isinstance(curve.get("knee"), dict):
            knee = curve["knee"]
            kx, ky = knee.get("offered", 0), knee.get("p99_ms", 0)
            ax.scatter([kx], [ky], marker="D", s=45, zorder=5,
                       color=line.get_color(), edgecolors="black")
            ax.annotate(f"{kx:.0f}/s", (kx, ky), fontsize=7,
                        xytext=(4, 6), textcoords="offset points")
    ax.set_yscale("log")
    ax.set_xlabel("offered load (msg/s)")
    ax.set_ylabel("p99 latency (ms, log)")
    ax.set_title("vertical scaling: knee vs stage width")
    ax.legend(fontsize=8)
    ax.grid(True, alpha=0.3)

    if bd:
        ax2 = axes[1]
        cols = [("serial", bd.get("serial", {})),
                (bd.get("staged_label", "staged"), bd.get("staged", {}))]
        xs = list(range(len(cols)))
        bottoms = [0.0] * len(cols)
        for comp, color in zip(COMPONENTS, COMPONENT_COLORS):
            heights = [c.get(f"{comp}_p50_ms", 0) for _, c in cols]
            ax2.bar(xs, heights, 0.55, bottom=bottoms, label=comp,
                    color=color)
            bottoms = [b + h for b, h in zip(bottoms, heights)]
        ax2.set_xticks(xs)
        ax2.set_xticklabels([name for name, _ in cols])
        ax2.set_ylabel("critical-path p50 (ms)")
        ax2.set_title(f"components at {bd.get('rate', 0):.0f} msg/s")
        ax2.legend(fontsize=8)
        ax2.grid(True, axis="y", alpha=0.3)
    out = os.path.join(dst, "vertical_scaling.png")
    fig.tight_layout()
    fig.savefig(out, dpi=120)
    plt.close(fig)
    print("wrote", out)


COMPONENTS = ("queueing", "cpu", "network", "quorum_wait")
COMPONENT_COLORS = ("#4c72b0", "#dd8452", "#55a868", "#c44e52")


def plot_span_breakdown(name, doc, dst, plt):
    """Stacked p50 latency-breakdown bars per destination class: the share of
    the critical path spent queueing / on CPU / in the network / waiting for
    quorums, with the measured end-to-end p50 marked on each bar."""
    aggs = [(cls, doc.get("aggregates", {}).get(cls, {}))
            for cls in ("local", "global")]
    aggs = [(cls, a) for cls, a in aggs if a.get("n")]
    if not aggs:
        return
    fig, ax = plt.subplots(figsize=(5, 4))
    xs = list(range(len(aggs)))
    bottoms = [0.0] * len(aggs)
    for comp, color in zip(COMPONENTS, COMPONENT_COLORS):
        heights = [a.get(comp, {}).get("p50_ns", 0) / 1e6 for _, a in aggs]
        ax.bar(xs, heights, 0.55, bottom=bottoms, label=comp, color=color)
        bottoms = [b + h for b, h in zip(bottoms, heights)]
    for x, (cls, a) in zip(xs, aggs):
        e2e = a.get("end_to_end", {}).get("p50_ns", 0) / 1e6
        ax.plot([x - 0.33, x + 0.33], [e2e, e2e], color="black",
                linewidth=1.2)
        ax.annotate(f"e2e p50 {e2e:.2f} ms", (x, e2e), ha="center",
                    va="bottom", fontsize=8)
    ax.set_xticks(xs)
    ax.set_xticklabels([f"{cls} (n={a['n']})" for cls, a in aggs])
    ax.set_ylabel("critical-path p50 latency (ms)")
    ax.set_title("latency breakdown by component")
    ax.legend(fontsize=8)
    ax.grid(True, axis="y", alpha=0.3)
    out = os.path.join(dst, name.replace(".json", "_breakdown.png"))
    fig.tight_layout()
    fig.savefig(out, dpi=120)
    plt.close(fig)
    print("wrote", out)


def summarize_cluster_section(name, doc):
    """Per-node scrape health of a merged cluster sidecar (byzcast-ctl
    merge): clock offsets, span counts, unreachable daemons."""
    cluster = doc.get("cluster")
    if not isinstance(cluster, dict):
        return
    nodes = cluster.get("nodes", [])
    up = [n for n in nodes if n.get("ok")]
    down = [n for n in nodes if not n.get("ok")]
    print(f"  cluster: {len(up)}/{len(nodes)} daemons scraped, "
          f"{sum(n.get('spans', 0) for n in up)} raw spans")
    offsets = [n.get("clock_offset_ns", 0) for n in up
               if n.get("clock_samples", 0) > 0]
    if offsets:
        spread = (max(offsets) - min(offsets)) / 1e6
        print(f"  clock offsets: spread {spread:.1f} ms over "
              f"{len(offsets)} nodes")
    for n in down:
        print(f"  DOWN {n.get('node', '?')}: {n.get('error', '?')}")


def plot_cluster_hops(name, doc, dst, plt):
    """Stacked per-hop latency breakdown from a merged cluster trace: one
    bar per hop position along the critical path (entry group first), each
    stacked by component p50 across the complete messages of that class.
    This is the cross-process view: every hop ran in a different OS process,
    aligned by the collector's clock-offset estimates."""
    if not isinstance(doc.get("cluster"), dict):
        return  # per-hop detail is only plotted for merged cluster traces
    for cls, is_global in (("local", False), ("global", True)):
        msgs = [m for m in doc.get("messages", [])
                if m.get("complete") and bool(m.get("global")) == is_global
                and m.get("hops")]
        if not msgs:
            continue
        depth = max(len(m["hops"]) for m in msgs)
        # Hop i of every message, entry group first; label by modal group.
        per_hop = []
        for i in range(depth):
            hops = [m["hops"][i] for m in msgs if len(m["hops"]) > i]
            groups = sorted(h.get("group") for h in hops)
            modal = groups[len(groups) // 2] if groups else "?"
            comps = {}
            for comp in COMPONENTS:
                vals = sorted(h.get("components", {}).get(f"{comp}_ns", 0)
                              for h in hops)
                comps[comp] = vals[len(vals) // 2] / 1e6 if vals else 0.0
            per_hop.append((f"hop {i}\n(g{modal}, n={len(hops)})", comps))
        fig, ax = plt.subplots(figsize=(1.8 + 1.6 * depth, 4))
        xs = list(range(depth))
        bottoms = [0.0] * depth
        for comp, color in zip(COMPONENTS, COMPONENT_COLORS):
            heights = [comps[comp] for _, comps in per_hop]
            ax.bar(xs, heights, 0.55, bottom=bottoms, label=comp,
                   color=color)
            bottoms = [b + h for b, h in zip(bottoms, heights)]
        ax.set_xticks(xs)
        ax.set_xticklabels([label for label, _ in per_hop], fontsize=8)
        ax.set_ylabel("per-hop p50 (ms)")
        ax.set_title(f"cross-process hop breakdown: {cls} "
                     f"(n={len(msgs)} complete)")
        ax.legend(fontsize=8)
        ax.grid(True, axis="y", alpha=0.3)
        out = os.path.join(dst, name.replace(".json", f"_hops_{cls}.png"))
        fig.tight_layout()
        fig.savefig(out, dpi=120)
        plt.close(fig)
        print("wrote", out)


def plot_sidecar_timeseries(name, doc, dst, plt):
    """One PNG per sidecar: CPU-busy (top) and queue-depth (bottom) samples."""
    ts = doc.get("metrics", {}).get("timeseries", {})
    busy = {k: v for k, v in ts.items() if k.startswith("actor.cpu_busy.")}
    depth = {k: v for k, v in ts.items() if k.startswith("actor.queue_depth.")}
    if not busy and not depth:
        return
    fig, axes = plt.subplots(2, 1, figsize=(7, 6), sharex=True)
    for ax, series, ylabel in ((axes[0], busy, "CPU busy fraction"),
                               (axes[1], depth, "inbox queue depth")):
        for key in sorted(series):
            points = series[key]
            xs = [p[0] / 1000.0 for p in points]  # ms -> s
            ys = [p[1] for p in points]
            ax.plot(xs, ys, linewidth=0.8, label=key.rsplit(".", 2)[-2] + "." +
                    key.rsplit(".", 1)[-1])
        ax.set_ylabel(ylabel)
        ax.grid(True, alpha=0.3)
        if len(series) <= 12 and series:
            ax.legend(fontsize=6, ncol=4)
    axes[1].set_xlabel("time (s)")
    axes[0].set_title(name.replace(".json", ""))
    out = os.path.join(dst, name.replace(".json", ".png"))
    fig.tight_layout()
    fig.savefig(out, dpi=120)
    plt.close(fig)
    print("wrote", out)


def main():
    # --require NAME.json (repeatable): fail loudly when an expected
    # BENCH_*.json artifact is missing instead of silently plotting less.
    args = list(sys.argv[1:])
    required = []
    while "--require" in args:
        i = args.index("--require")
        if i + 1 >= len(args):
            print("usage: plot_benches.py [src] [dst] [--require BENCH.json]...")
            return 2
        required.append(args[i + 1])
        del args[i : i + 2]
    src = args[0] if len(args) > 0 else "bench_csv"
    dst = args[1] if len(args) > 1 else "bench_plots"
    # The CSV dir is optional: BENCH_*.json artifacts (e.g. bench_sweep's)
    # are also searched for in the working directory, so a json-only run
    # still summarizes and plots.
    files, sidecars = [], []
    if os.path.isdir(src):
        files = sorted(f for f in os.listdir(src) if f.endswith(".csv"))
        sidecars = sorted(f for f in os.listdir(src)
                          if f.endswith("_metrics.json"))

    docs = {}
    for name in sidecars:
        try:
            docs[name] = load_sidecar(os.path.join(src, name))
        except (json.JSONDecodeError, OSError) as err:
            print(f"skipping malformed sidecar {name}: {err}")
    for name, doc in docs.items():
        summarize_sidecar(name, doc)
    span_docs = {}
    span_files = (sorted(f for f in os.listdir(src)
                         if f.endswith("_spans.json"))
                  if os.path.isdir(src) else [])
    for name in span_files:
        try:
            span_docs[name] = load_sidecar(os.path.join(src, name))
        except (json.JSONDecodeError, OSError) as err:
            print(f"skipping malformed span sidecar {name}: {err}")
    for name, doc in span_docs.items():
        summarize_span_sidecar(name, doc)
        summarize_cluster_section(name, doc)
    runtime_bench = find_bench_json(src, "BENCH_runtime.json")
    if runtime_bench:
        summarize_runtime_bench(runtime_bench)
    wire_bench = find_bench_json(src, "BENCH_wire.json")
    if wire_bench:
        summarize_wire_bench(wire_bench)
    trace_bench = find_bench_json(src, "BENCH_trace.json")
    if trace_bench:
        summarize_trace_bench(trace_bench)
    pipeline_bench = find_bench_json(src, "BENCH_pipeline.json")
    if pipeline_bench:
        summarize_pipeline_bench(pipeline_bench)
    sweep_bench = find_bench_json(src, "BENCH_sweep.json")
    if sweep_bench:
        summarize_sweep_bench(sweep_bench)
    vertical_bench = find_bench_json(src, "BENCH_vertical.json")
    if vertical_bench:
        summarize_vertical_bench(vertical_bench)

    by_name = {
        "BENCH_runtime.json": runtime_bench,
        "BENCH_wire.json": wire_bench,
        "BENCH_trace.json": trace_bench,
        "BENCH_pipeline.json": pipeline_bench,
        "BENCH_sweep.json": sweep_bench,
        "BENCH_vertical.json": vertical_bench,
    }
    # --require also accepts span sidecars (e.g. cluster_spans.json from
    # byzcast-ctl merge) and *_metrics.json sidecars by filename.
    missing = [name for name in required
               if not (by_name.get(name) or span_docs.get(name)
                       or docs.get(name))]
    if missing:
        for name in missing:
            print(f"FAIL: required bench artifact missing or malformed: {name}")
        return 1

    benches = list(by_name.values())
    if not files and not sidecars and not span_docs and not any(benches):
        print(f"no CSV, metrics or BENCH_*.json inputs in {src}/ or cwd")
        return 1

    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("\nmatplotlib not installed; files available:")
        for f in files + sidecars:
            print(" ", os.path.join(src, f))
        return 0

    os.makedirs(dst, exist_ok=True)
    for name in files:
        header, rows = load(os.path.join(src, name))
        if not rows:
            continue
        fig, ax = plt.subplots(figsize=(6, 4))
        if header[:2] == ["latency_ms", "cdf"]:
            xs = [float(r[0]) for r in rows]
            ys = [float(r[1]) for r in rows]
            ax.step(xs, ys, where="post")
            ax.set_xlabel("latency (ms)")
            ax.set_ylabel("CDF")
            ax.set_ylim(0, 1.02)
        else:
            # Series table: first column is x, numeric columns are lines.
            xs = list(range(len(rows)))
            ax.set_xticks(xs)
            ax.set_xticklabels([r[0] for r in rows])
            for col in range(1, len(header)):
                try:
                    ys = [float(str(r[col]).split()[0]) for r in rows]
                except (ValueError, IndexError):
                    continue
                ax.plot(xs, ys, marker="o", label=header[col])
            ax.set_xlabel(header[0])
            ax.legend(fontsize=8)
        ax.set_title(name.replace(".csv", ""))
        ax.grid(True, alpha=0.3)
        out = os.path.join(dst, name.replace(".csv", ".png"))
        fig.tight_layout()
        fig.savefig(out, dpi=120)
        plt.close(fig)
        print("wrote", out)

    for name, doc in docs.items():
        plot_sidecar_timeseries(name, doc, dst, plt)
    for name, doc in span_docs.items():
        plot_span_breakdown(name, doc, dst, plt)
        plot_cluster_hops(name, doc, dst, plt)
    if runtime_bench:
        plot_runtime_bench(runtime_bench, src, dst, plt)
    if wire_bench:
        plot_wire_bench(wire_bench, dst, plt)
    if pipeline_bench:
        plot_pipeline_bench(pipeline_bench, dst, plt)
    if sweep_bench:
        plot_sweep_bench(sweep_bench, dst, plt)
    if vertical_bench:
        plot_vertical_bench(vertical_bench, dst, plt)
    return 0


if __name__ == "__main__":
    sys.exit(main())
