#!/usr/bin/env python3
"""Validate the observability artifacts a traced run emits.

Usage:
    check_trace.py SPANS_JSON [CHROME_JSON] [--expect-zero-violations]

SPANS_JSON is the deterministic span sidecar written by
workload::write_span_sidecar (schema "byzcast-spans-v1"); CHROME_JSON is the
Chrome trace-event file written by workload::write_chrome_trace. The checks
mirror the acceptance criteria of the observability PR:

  * the sidecar parses, declares the expected schema, and every complete
    message's four-component decomposition sums to its measured end-to-end
    latency exactly (integer nanoseconds, no tolerance beyond 1 ns);
  * per-hop components are nonnegative and sum to the message totals;
  * aggregates / edges have well-formed percentile blocks (p50 <= p99);
  * the Chrome file is valid trace-event JSON: a traceEvents array whose
    events use only the documented phases (X complete events with ts/dur,
    i instants, M metadata), with pid/tid/ts on every timed event;
  * with --expect-zero-violations, the run's invariant monitors must have
    been enabled and report zero violations.

Exits nonzero with a message on the first failure, so CI can gate on it.
"""

import json
import sys

FAILURES = 0


def fail(msg):
    global FAILURES
    FAILURES += 1
    print(f"FAIL: {msg}")


def require(cond, msg):
    if not cond:
        fail(msg)
    return cond


def check_percentiles(block, where):
    if not require(isinstance(block, dict), f"{where}: not an object"):
        return
    for key in ("n", "p50_ns", "p99_ns"):
        require(isinstance(block.get(key), int), f"{where}.{key}: missing or not an int")
    if isinstance(block.get("p50_ns"), int) and isinstance(block.get("p99_ns"), int):
        if block["n"] > 0:
            require(block["p50_ns"] <= block["p99_ns"], f"{where}: p50 > p99")


def component_sum(components, where):
    total = 0
    for key in ("queueing_ns", "cpu_ns", "network_ns", "quorum_wait_ns"):
        value = components.get(key)
        if not require(isinstance(value, int), f"{where}.{key}: missing or not an int"):
            return None
        require(value >= 0, f"{where}.{key}: negative ({value})")
        total += value
    return total


def check_spans(path, expect_zero_violations):
    with open(path) as f:
        doc = json.load(f)

    require(doc.get("schema") == "byzcast-spans-v1",
            f"schema is {doc.get('schema')!r}, expected 'byzcast-spans-v1'")
    for key in ("f", "spans_recorded", "spans_dropped", "messages",
                "aggregates", "edges"):
        require(key in doc, f"missing top-level key {key!r}")

    messages = doc.get("messages", [])
    require(isinstance(messages, list), "messages: not a list")
    complete = 0
    for msg in messages:
        where = f"message {msg.get('id')!r}"
        for key in ("id", "complete", "dst_count", "global", "submitted_ns",
                    "end_to_end_ns"):
            require(key in msg, f"{where}: missing {key!r}")
        if not msg.get("complete"):
            continue
        complete += 1
        totals = component_sum(msg.get("totals", {}), f"{where}.totals")
        e2e = msg.get("end_to_end_ns")
        if totals is not None and isinstance(e2e, int):
            require(abs(totals - e2e) <= 1,
                    f"{where}: component sum {totals} != end_to_end {e2e}")
        hop_total = 0
        for i, hop in enumerate(msg.get("hops", [])):
            hop_sum = component_sum(hop.get("components", {}),
                                    f"{where}.hops[{i}]")
            if hop_sum is not None:
                hop_total += hop_sum
        if totals is not None:
            require(hop_total <= totals,
                    f"{where}: hop components {hop_total} exceed totals {totals}")
    require(complete > 0, "no complete traced message in the sidecar")

    for cls in ("local", "global"):
        agg = doc.get("aggregates", {}).get(cls)
        if not require(isinstance(agg, dict), f"aggregates.{cls}: missing"):
            continue
        for key in ("end_to_end", "queueing", "cpu", "network", "quorum_wait"):
            check_percentiles(agg.get(key), f"aggregates.{cls}.{key}")

    for i, edge in enumerate(doc.get("edges", [])):
        for key in ("parent", "child"):
            require(isinstance(edge.get(key), int), f"edges[{i}].{key}: missing")
        check_percentiles(edge.get("stats"), f"edges[{i}].stats")

    monitor = doc.get("monitor")
    if expect_zero_violations:
        if require(isinstance(monitor, dict),
                   "--expect-zero-violations: run had monitors disabled"):
            require(monitor.get("violations_total") == 0,
                    f"monitors report {monitor.get('violations_total')} violations")
    print(f"{path}: {len(messages)} messages ({complete} complete), "
          f"{len(doc.get('edges', []))} edges, "
          f"dropped={doc.get('spans_dropped')}")


def check_chrome(path):
    with open(path) as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not require(isinstance(events, list) and events,
                   "traceEvents: missing or empty"):
        return
    phases = {"X": 0, "i": 0, "M": 0}
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if not require(ph in phases, f"traceEvents[{i}]: unexpected ph {ph!r}"):
            continue
        phases[ph] += 1
        require(isinstance(ev.get("pid"), int), f"traceEvents[{i}]: missing pid")
        require(isinstance(ev.get("tid"), int), f"traceEvents[{i}]: missing tid")
        if ph in ("X", "i"):
            require(isinstance(ev.get("ts"), (int, float)),
                    f"traceEvents[{i}]: missing ts")
            require(isinstance(ev.get("name"), str),
                    f"traceEvents[{i}]: missing name")
        if ph == "X":
            dur = ev.get("dur")
            require(isinstance(dur, (int, float)) and dur >= 0,
                    f"traceEvents[{i}]: X event without nonnegative dur")
        if ph == "i":
            require(ev.get("s") in ("t", "p", "g"),
                    f"traceEvents[{i}]: instant without scope")
    require(phases["X"] > 0, "no complete (X) events")
    require(phases["M"] > 0, "no metadata (M) events")
    print(f"{path}: {len(events)} events "
          f"(X={phases['X']}, i={phases['i']}, M={phases['M']})")


def main(argv):
    expect_zero = "--expect-zero-violations" in argv
    paths = [a for a in argv if not a.startswith("--")]
    if not paths:
        print(__doc__)
        return 2
    check_spans(paths[0], expect_zero)
    if len(paths) > 1:
        check_chrome(paths[1])
    if FAILURES:
        print(f"{FAILURES} check(s) failed")
        return 1
    print("trace artifacts OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
