#!/usr/bin/env python3
"""Validate a BENCH_sweep.json artifact (schema "byzcast-sweep-v1").

Usage:
    check_sweep.py BENCH_SWEEP_JSON [--require-knee] [--require-ablation NAME]

The file is written by bench_sweep / workload::outcome_to_json. Checks:

  * the document parses, declares the expected schema, and carries a
    non-empty curves array;
  * every curve has points sorted strictly by offered rate, and each point
    carries the full numeric record (offered, throughput, goodput_ratio,
    p50_ms, p99_ms, completed, monitor_violations, sample_overflow,
    saturated);
  * no point tripped invariant monitors or overflowed its sample capacity;
  * goodput never exceeds offered by more than rounding (ratio <= 1.05);
  * saturation classification is consistent: once the sweep grid saturates,
    the knee (when found) coincides with a saturated measured point and lies
    strictly above the curve's max_unsaturated_rate;
  * with --require-knee, every curve must have found a knee;
  * with --require-ablation NAME, a curve labeled NAME must be present.

Exits nonzero with a message on each failure, so CI can gate on it.
"""

import json
import sys

FAILURES = 0

POINT_NUM_FIELDS = (
    "offered",
    "throughput",
    "goodput_ratio",
    "p50_ms",
    "p99_ms",
    "completed",
    "monitor_violations",
    "sample_overflow",
)


def fail(msg):
    global FAILURES
    FAILURES += 1
    print(f"FAIL: {msg}")


def require(cond, msg):
    if not cond:
        fail(msg)
    return cond


def check_point(pt, where):
    if not require(isinstance(pt, dict), f"{where}: not an object"):
        return None
    for key in POINT_NUM_FIELDS:
        if not require(
            isinstance(pt.get(key), (int, float)) and not isinstance(pt.get(key), bool),
            f"{where}.{key}: missing or not a number",
        ):
            return None
    require(isinstance(pt.get("saturated"), bool), f"{where}.saturated: missing or not a bool")
    require(pt["offered"] > 0, f"{where}: offered rate must be positive")
    require(pt["completed"] > 0, f"{where}: completed nothing")
    require(pt["monitor_violations"] == 0, f"{where}: {pt['monitor_violations']} invariant violations")
    require(pt["sample_overflow"] == 0, f"{where}: {pt['sample_overflow']} samples overflowed capacity")
    require(pt["goodput_ratio"] <= 1.05, f"{where}: goodput {pt['goodput_ratio']:.3f} exceeds offered")
    require(pt["p50_ms"] <= pt["p99_ms"] + 1e-9, f"{where}: p50 > p99")
    return pt


def check_curve(curve, where):
    if not require(isinstance(curve, dict), f"{where}: not an object"):
        return
    label = curve.get("label")
    require(isinstance(label, str) and label, f"{where}.label: missing")
    points = curve.get("points")
    if not require(isinstance(points, list) and points, f"{where}.points: missing or empty"):
        return
    checked = []
    for i, pt in enumerate(points):
        got = check_point(pt, f"{where}.points[{i}]")
        if got is not None:
            checked.append(got)
    offered = [pt["offered"] for pt in checked]
    require(offered == sorted(offered) and len(set(offered)) == len(offered),
            f"{where}: points not strictly sorted by offered rate")

    knee_found = curve.get("knee_found")
    require(isinstance(knee_found, bool), f"{where}.knee_found: missing or not a bool")
    max_ok = curve.get("max_unsaturated_rate")
    require(isinstance(max_ok, (int, float)), f"{where}.max_unsaturated_rate: missing")
    if knee_found:
        knee = curve.get("knee")
        if require(isinstance(knee, dict), f"{where}.knee: missing despite knee_found"):
            check_point(knee, f"{where}.knee")
            require(knee.get("saturated") is True, f"{where}.knee: knee point not saturated")
            matches = [pt for pt in checked if abs(pt["offered"] - knee.get("offered", -1)) < 1e-9]
            require(bool(matches), f"{where}.knee: offered rate not among measured points")
            if isinstance(max_ok, (int, float)):
                require(knee.get("offered", 0) > max_ok - 1e-9,
                        f"{where}.knee: at or below max_unsaturated_rate")


def main():
    args = [a for a in sys.argv[1:]]
    require_knee = "--require-knee" in args
    if require_knee:
        args.remove("--require-knee")
    required_ablations = []
    while "--require-ablation" in args:
        i = args.index("--require-ablation")
        if i + 1 >= len(args):
            print("usage: check_sweep.py BENCH_SWEEP_JSON [--require-knee] [--require-ablation NAME]")
            return 2
        required_ablations.append(args[i + 1])
        del args[i : i + 2]
    if len(args) != 1:
        print("usage: check_sweep.py BENCH_SWEEP_JSON [--require-knee] [--require-ablation NAME]")
        return 2

    try:
        with open(args[0]) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {args[0]}: {e}")
        return 1

    require(doc.get("schema") == "byzcast-sweep-v1", f"schema: {doc.get('schema')!r}")
    require(isinstance(doc.get("name"), str) and doc.get("name"), "name: missing")
    curves = doc.get("curves")
    if require(isinstance(curves, list) and curves, "curves: missing or empty"):
        labels = []
        for i, curve in enumerate(curves):
            check_curve(curve, f"curves[{i}]")
            if isinstance(curve, dict) and isinstance(curve.get("label"), str):
                labels.append(curve["label"])
                if require_knee:
                    require(curve.get("knee_found") is True,
                            f"curves[{i}] ({curve['label']}): no knee found")
        for name in required_ablations:
            require(name in labels, f"required ablation curve missing: {name}")

    if FAILURES == 0:
        print(f"OK: {args[0]} ({len(curves) if isinstance(curves, list) else 0} curves)")
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main())
