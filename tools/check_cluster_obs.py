#!/usr/bin/env python3
"""Validate the live-cluster observability artifacts.

Usage:
    check_cluster_obs.py [--spans CLUSTER_SPANS_JSON]
                         [--expect-nodes N] [--expect-zero-violations]
                         [METRICS_TXT ...]

METRICS_TXT files are /metrics scrapes (Prometheus exposition format 0.0.4,
one per daemon, e.g. byzcast-ctl scrape's prom_*.txt). For each file:

  * every non-comment line parses as `name{labels} value`;
  * metric names use only [a-zA-Z_:][a-zA-Z0-9_:]*;
  * every metric introduced by `# TYPE ... counter` ends in `_total` and
    its values are nonnegative;
  * histogram bucket series are cumulative (nondecreasing in le order),
    end in an le="+Inf" bucket, and that bucket equals the `_count`
    sample — the mid-run scrape invariant.

CLUSTER_SPANS_JSON is the merged sidecar written by `byzcast-ctl merge`
(schema "byzcast-spans-v1" plus a "cluster" section). Checks:

  * schema and cluster section are well-formed: per-node entries with
    name, ok flag, clock estimate or error prose;
  * every complete message's four-component totals sum exactly to its
    end-to-end latency (integer ns — the telescoping invariant survives
    the cross-process clock alignment);
  * per-hop components are nonnegative;
  * with --expect-nodes N, exactly N nodes were scraped successfully;
  * with --expect-zero-violations, the summed monitor violations are 0.

Exits nonzero after reporting every failure, so CI can gate on it.
"""

import json
import re
import sys

FAILURES = 0

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
# name{labels} value  |  name value
SAMPLE_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$")
LE_RE = re.compile(r'le="([^"]*)"')


def fail(msg):
    global FAILURES
    FAILURES += 1
    print(f"FAIL: {msg}")


def require(cond, msg):
    if not cond:
        fail(msg)
    return cond


def parse_value(text):
    try:
        return float(text)
    except ValueError:
        return None


def check_metrics_file(path):
    """One /metrics scrape: exposition syntax + histogram invariants."""
    with open(path) as fh:
        lines = fh.read().splitlines()

    counter_metrics = set()
    histogram_metrics = set()
    samples = []  # (name, labels_text, value)
    for i, line in enumerate(lines, 1):
        if not line:
            continue
        if line.startswith("#"):
            m = re.match(r"^# TYPE (\S+) (\S+)$", line)
            if line.startswith("# TYPE"):
                if not require(m, f"{path}:{i}: malformed TYPE comment"):
                    continue
                name, kind = m.group(1), m.group(2)
                require(NAME_RE.match(name),
                        f"{path}:{i}: illegal metric name {name!r}")
                if kind == "counter":
                    counter_metrics.add(name)
                    require(name.endswith("_total"),
                            f"{path}:{i}: counter {name} lacks _total suffix")
                elif kind == "histogram":
                    histogram_metrics.add(name)
            continue
        m = SAMPLE_RE.match(line)
        if not require(m, f"{path}:{i}: unparseable sample line {line!r}"):
            continue
        name, labels, value_text = m.group(1), m.group(2) or "", m.group(3)
        value = parse_value(value_text)
        if not require(value is not None,
                       f"{path}:{i}: non-numeric value {value_text!r}"):
            continue
        samples.append((name, labels, value))

    by_name = {}
    for name, labels, value in samples:
        by_name.setdefault(name, []).append((labels, value))

    for name in counter_metrics:
        for labels, value in by_name.get(name, []):
            require(value >= 0, f"{path}: counter {name}{labels} negative")

    for metric in histogram_metrics:
        buckets = by_name.get(metric + "_bucket", [])
        if not require(buckets, f"{path}: histogram {metric} has no buckets"):
            continue
        les = []
        for labels, value in buckets:
            m = LE_RE.search(labels)
            if not require(m, f"{path}: {metric}_bucket without le label"):
                continue
            le = m.group(1)
            les.append((float("inf") if le == "+Inf" else float(le), value))
        les.sort(key=lambda p: p[0])
        require(les and les[-1][0] == float("inf"),
                f"{path}: histogram {metric} lacks an le=\"+Inf\" bucket")
        for (lo, a), (hi, b) in zip(les, les[1:]):
            require(a <= b,
                    f"{path}: {metric} buckets not cumulative: "
                    f"le={lo} -> {a}, le={hi} -> {b}")
        counts = by_name.get(metric + "_count", [])
        require(counts, f"{path}: histogram {metric} lacks _count")
        if les and counts:
            require(les[-1][1] == counts[0][1],
                    f"{path}: {metric} +Inf bucket {les[-1][1]} != "
                    f"_count {counts[0][1]}")

    print(f"ok: {path}: {len(samples)} samples, "
          f"{len(counter_metrics)} counters, "
          f"{len(histogram_metrics)} histograms")


def check_components(comp, where):
    total = 0
    for key in ("queueing_ns", "cpu_ns", "network_ns", "quorum_wait_ns"):
        v = comp.get(key)
        if not require(isinstance(v, int), f"{where}.{key}: missing"):
            return None
        require(v >= 0, f"{where}.{key}: negative ({v})")
        total += v
    return total


def check_cluster_spans(path, expect_nodes, expect_zero_violations):
    with open(path) as fh:
        doc = json.load(fh)

    require(doc.get("schema") == "byzcast-spans-v1",
            f"{path}: schema is {doc.get('schema')!r}")

    cluster = doc.get("cluster")
    if require(isinstance(cluster, dict), f"{path}: no cluster section"):
        nodes = cluster.get("nodes", [])
        ok_nodes = 0
        for n in nodes:
            name = n.get("node", "?")
            if n.get("ok"):
                ok_nodes += 1
                require(isinstance(n.get("clock_offset_ns"), int),
                        f"{path}: node {name} lacks clock_offset_ns")
                require(n.get("clock_samples", 0) > 0,
                        f"{path}: node {name} has no clock samples")
                require(isinstance(n.get("spans"), int),
                        f"{path}: node {name} lacks span count")
            else:
                require(n.get("error"),
                        f"{path}: failed node {name} lacks error prose")
        if expect_nodes is not None:
            require(ok_nodes == expect_nodes,
                    f"{path}: scraped {ok_nodes} nodes, expected "
                    f"{expect_nodes}")
        print(f"ok: {path}: cluster section, {ok_nodes}/{len(nodes)} "
              f"nodes scraped")

    messages = doc.get("messages", [])
    complete = [m for m in messages if m.get("complete")]
    for m in complete:
        mid = m.get("id", "?")
        total = check_components(m.get("totals", {}), f"{mid}.totals")
        e2e = m.get("end_to_end_ns")
        if total is not None and isinstance(e2e, int):
            require(total == e2e,
                    f"{path}: message {mid}: components sum {total} != "
                    f"end_to_end {e2e} (telescoping broken)")
        for i, hop in enumerate(m.get("hops", [])):
            check_components(hop.get("components", {}), f"{mid}.hops[{i}]")
    print(f"ok: {path}: {len(messages)} traced messages, "
          f"{len(complete)} complete, telescoping exact")

    monitor = doc.get("monitor")
    if expect_zero_violations:
        if require(isinstance(monitor, dict),
                   f"{path}: monitor summary absent"):
            total = monitor.get("violations_total")
            require(total == 0,
                    f"{path}: {total} monitor violations (expected 0)")


def main(argv):
    expect_nodes = None
    expect_zero = False
    spans = None
    metrics = []
    args = argv[1:]
    while args:
        a = args.pop(0)
        if a == "--spans":
            if not args:
                print("usage: check_cluster_obs.py [--spans FILE] "
                      "[--expect-nodes N] [--expect-zero-violations] "
                      "[METRICS_TXT ...]")
                return 2
            spans = args.pop(0)
        elif a == "--expect-nodes":
            expect_nodes = int(args.pop(0))
        elif a == "--expect-zero-violations":
            expect_zero = True
        else:
            metrics.append(a)

    if spans is None and not metrics:
        print("nothing to check (no --spans, no metrics files)")
        return 2

    for path in metrics:
        try:
            check_metrics_file(path)
        except OSError as err:
            fail(f"{path}: {err}")
    if spans is not None:
        try:
            check_cluster_spans(spans, expect_nodes, expect_zero)
        except (OSError, json.JSONDecodeError) as err:
            fail(f"{spans}: {err}")

    if FAILURES:
        print(f"{FAILURES} failure(s)")
        return 1
    print("all cluster observability checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
